// Serving runtime tests: batched-vs-sequential bit-identity on the exact and
// approximate paths, deadline-driven partial flushes, multi-tenant isolation
// under concurrent submits, allocation-free submit path, and the load
// generator. One engine (micro profile) is shared by the whole suite —
// loading trains a model, which dominates the suite's runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <new>
#include <thread>
#include <vector>

#include "axnn/axnn.hpp"

// --- Global allocation counter -------------------------------------------
// Counts operator-new calls made by the *calling thread* while armed, so the
// dispatcher thread's batch-assembly allocations (which are allowed) never
// leak into the measurement.
namespace {
thread_local bool t_count_allocs = false;
thread_local int64_t t_alloc_count = 0;
}  // namespace

void* operator new(std::size_t n) {
  if (t_count_allocs) ++t_alloc_count;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace axnn::serve {
namespace {

constexpr int kMaxBatch = 4;
constexpr int kQueueCapacity = 16;
constexpr const char* kApproxPlan = "default=trunc5";
constexpr const char* kExactPlan = "default=trunc5:mode=exact";

ModelSpec micro_spec() {
  ModelSpec spec;
  spec.model = core::ModelKind::kResNet20;
  spec.profile.image_size = 8;
  spec.profile.train_size = 160;
  spec.profile.test_size = 80;
  spec.profile.resnet_width = 0.25f;
  spec.profile.fp_epochs = 4;
  spec.profile.ft_epochs = 2;
  spec.profile.ft_batch = 40;
  spec.profile.quant_epochs = 1;
  spec.profile.decay_every = 2;
  spec.profile.cache_dir =
      (std::filesystem::temp_directory_path() / "axnn_serve_cache").string();
  spec.use_cache = false;
  spec.plan = kApproxPlan;
  spec.finetune = false;
  spec.batching.max_batch = kMaxBatch;
  spec.batching.max_delay_us = 20000;
  spec.batching.queue_capacity = kQueueCapacity;
  // Two lanes regardless of core count: the lifecycle tests need a healthy
  // lane to re-run batches abandoned on a quarantined one.
  spec.lanes = 2;
  return spec;
}

class ServeFixture : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    engine_ = Engine::load(micro_spec()).release();
    exact_ = &engine_->open_session("exact", kExactPlan);
  }
  static void TearDownTestSuite() {
    delete engine_;
    engine_ = nullptr;
    exact_ = nullptr;
  }

  static Engine* engine_;
  static Session* exact_;  ///< tenant serving the exact-mode plan
};

Engine* ServeFixture::engine_ = nullptr;
Session* ServeFixture::exact_ = nullptr;

/// Reference logits: a direct single-sample forward of lane 0 under the
/// session's own context. Only valid while no requests are in flight (lane
/// forward caches are single-flight).
Tensor reference_logits(Engine& e, Session& s, const Tensor& sample) {
  return e.model(0).forward(sample, s.exec_context(0));
}

TEST_F(ServeFixture, LoadValidatesSpec) {
  ModelSpec bad = micro_spec();
  bad.batching.queue_capacity = 2;  // < max_batch
  EXPECT_THROW(Engine::load(bad), std::invalid_argument);
  EXPECT_THROW(engine_->open_session("default", kApproxPlan), std::invalid_argument);
  EXPECT_THROW(engine_->open_session("bad-plan", "default=no_such_mul"),
               std::invalid_argument);
  // Bit-width changes require recalibration; the engine refuses the tenant.
  EXPECT_THROW(engine_->open_session("bad-widths", "default=trunc5:w3"),
               std::invalid_argument);
}

TEST_F(ServeFixture, BatchedMatchesSequentialExactAndApprox) {
  const data::Dataset& test = engine_->data().test;
  for (Session* s : {&engine_->session(), exact_}) {
    std::vector<Ticket> tickets;
    for (int i = 0; i < kMaxBatch; ++i)
      tickets.push_back(s->submit(test.slice(i, 1).first));
    std::vector<Result> results;
    for (const Ticket& t : tickets) results.push_back(s->await(t));
    engine_->drain();

    for (int i = 0; i < kMaxBatch; ++i) {
      // All four requests ride one full-batch flush...
      EXPECT_EQ(results[static_cast<size_t>(i)].batch_size, kMaxBatch);
      // ...yet every sample's logits are bit-identical to its own
      // single-sample forward.
      const Tensor ref = reference_logits(*engine_, *s, test.slice(i, 1).first);
      ASSERT_EQ(ref.numel(), results[static_cast<size_t>(i)].logits.numel());
      for (int64_t j = 0; j < ref.numel(); ++j)
        ASSERT_EQ(ref[j], results[static_cast<size_t>(i)].logits[j])
            << "session " << s->name() << " sample " << i << " logit " << j;
    }
  }
  // The two plans genuinely serve different arithmetic.
  const Tensor a = reference_logits(*engine_, engine_->session(), test.slice(0, 1).first);
  const Tensor b = reference_logits(*engine_, *exact_, test.slice(0, 1).first);
  bool differs = false;
  for (int64_t j = 0; j < a.numel() && !differs; ++j) differs = a[j] != b[j];
  EXPECT_TRUE(differs);
}

TEST_F(ServeFixture, DeadlineExpiryFlushesPartialBatch) {
  const EngineStats before = engine_->stats();
  // One lone request with a 1 ms deadline: the batcher must not hold it for
  // the 20 ms delay budget waiting for batch-mates.
  const Ticket t =
      engine_->session().submit(engine_->data().test.slice(0, 1).first, /*deadline_us=*/1000);
  const Result r = engine_->session().await(t);
  EXPECT_EQ(r.batch_size, 1);
  EXPECT_LT(r.latency_ms, 20.0);
  const EngineStats after = engine_->stats();
  EXPECT_EQ(after.flush_timer, before.flush_timer + 1);
  EXPECT_EQ(after.requests, before.requests + 1);
}

TEST_F(ServeFixture, MultiTenantIsolationUnderConcurrentSubmits) {
  const data::Dataset& test = engine_->data().test;
  constexpr int kRequests = 40;  // > queue_capacity: exercises backpressure
  std::atomic<int> mismatches{0};

  auto client = [&](Session* s, std::vector<Result>* out) {
    for (int i = 0; i < kRequests; ++i)
      out->push_back(s->await(s->submit(test.slice(i % test.size(), 1).first)));
  };
  std::vector<Result> approx_results, exact_results;
  std::thread ta(client, &engine_->session(), &approx_results);
  std::thread tb(client, exact_, &exact_results);
  ta.join();
  tb.join();
  engine_->drain();

  // Every result matches its own session's reference — concurrent tenants
  // never leak each other's plan (tables, mode overrides) into a batch.
  for (int i = 0; i < kRequests; ++i) {
    const Tensor sample = test.slice(i % test.size(), 1).first;
    const Tensor ra = reference_logits(*engine_, engine_->session(), sample);
    const Tensor re = reference_logits(*engine_, *exact_, sample);
    for (int64_t j = 0; j < ra.numel(); ++j) {
      if (approx_results[static_cast<size_t>(i)].logits[j] != ra[j]) ++mismatches;
      if (exact_results[static_cast<size_t>(i)].logits[j] != re[j]) ++mismatches;
    }
  }
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(ServeFixture, SubmitIsAllocationFreeAfterWarmup) {
  Session& s = engine_->session();
  const Tensor sample = engine_->data().test.slice(0, 1).first;
  // Warmup: every slot has been through one submit/await cycle.
  for (int round = 0; round < 2; ++round) {
    std::vector<Ticket> warm;
    for (int i = 0; i < kQueueCapacity; ++i) warm.push_back(s.submit(sample));
    for (const Ticket& t : warm) (void)s.await(t);
  }
  engine_->drain();

  Ticket tickets[kQueueCapacity];
  t_alloc_count = 0;
  t_count_allocs = true;
  for (int i = 0; i < kQueueCapacity; ++i) tickets[i] = s.submit(sample);
  t_count_allocs = false;
  EXPECT_EQ(t_alloc_count, 0) << "submit path allocated on the steady state";
  for (const Ticket& t : tickets) (void)s.await(t);
}

TEST_F(ServeFixture, BatchedForwardIsAllocationFreeAfterWarmup) {
  // The full batched conv forward — the call the dispatcher makes per flush —
  // must not touch the heap on the steady state: activation/im2col tensors
  // recycle through the buffer pool, GEMMs resolve prepared plans via each
  // layer's memo, parallel_for dispatch uses the pre-sized task ring, and the
  // sentinel's ABFT scratch is pooled too. Run it on this thread (the
  // allocation counter is thread-local) under the session's own monitored
  // approx context.
  Session& s = engine_->session();
  engine_->drain();
  const Tensor batch = engine_->data().test.slice(0, kMaxBatch).first;
  const nn::ExecContext ctx = s.exec_context(0);
  // Warmup: first pass builds plans and populates pool freelists; a couple
  // more let every transient block class reach its steady-state population.
  for (int i = 0; i < 3; ++i) (void)engine_->model(0).forward(batch, ctx);

  t_alloc_count = 0;
  t_count_allocs = true;
  const Tensor logits = engine_->model(0).forward(batch, ctx);
  t_count_allocs = false;
  EXPECT_EQ(logits.shape()[0], kMaxBatch);
  EXPECT_EQ(t_alloc_count, 0) << "batched forward allocated on the steady state";
}

TEST_F(ServeFixture, DoubleAwaitThrows) {
  Session& s = engine_->session();
  const Ticket t = s.submit(engine_->data().test.slice(0, 1).first);
  (void)s.await(t);
  EXPECT_THROW(s.await(t), std::logic_error);
  EXPECT_THROW(s.await(Ticket{}), std::logic_error);
  EXPECT_THROW(s.submit(Tensor(Shape{3})), std::invalid_argument);
}

TEST_F(ServeFixture, EvaluateAccuracyMatchesDirect) {
  constexpr int64_t kSamples = 48;
  const double served = engine_->evaluate_accuracy(engine_->session(), kSamples);
  const data::Dataset& test = engine_->data().test;
  data::Dataset subset;
  auto [images, labels] = test.slice(0, kSamples);
  subset.images = std::move(images);
  subset.labels = std::move(labels);
  const double direct = train::evaluate_accuracy(engine_->model(0), subset,
                                                 engine_->session().exec_context(0));
  EXPECT_DOUBLE_EQ(served, direct);
}

TEST_F(ServeFixture, LoadGeneratorScenarios) {
  const data::Dataset& pool = engine_->data().test;
  for (const Arrival arrival : {Arrival::kClosed, Arrival::kPoisson, Arrival::kBurst}) {
    LoadSpec spec;
    spec.arrival = arrival;
    spec.requests = 24;
    spec.clients = 4;
    spec.rate_rps = 2000.0;
    spec.burst = 8;
    spec.deadline_us = 5000;
    const LoadReport r = run_load(*engine_, engine_->session(), pool, spec);
    EXPECT_EQ(r.scenario, to_string(arrival));
    EXPECT_EQ(r.requests, 24);
    EXPECT_GT(r.batches, 0);
    EXPECT_GT(r.throughput_rps, 0.0);
    EXPECT_LE(r.latency.p50, r.latency.p95);
    EXPECT_LE(r.latency.p95, r.latency.p99);
    EXPECT_LE(r.latency.p99, r.latency.max);
    EXPECT_GE(r.mean_batch, 1.0);
    const obs::Json j = r.to_json();
    EXPECT_NE(j.find("p99_ms"), nullptr);
  }
  const EngineStats stats = engine_->stats();
  EXPECT_GT(stats.batches, 0);
  EXPECT_GE(stats.max_batch, 1);
}

// --- Lifecycle: pure state machines (no engine) ---------------------------

TEST(AdmissionTest, DecisionTable) {
  AdmissionConfig cfg;  // kBlock, no feasibility check
  const int64_t now = 1'000'000'000;
  // Free slots always admit, whatever the policy.
  for (const AdmissionPolicy p :
       {AdmissionPolicy::kBlock, AdmissionPolicy::kShedNewest, AdmissionPolicy::kShedByDeadline}) {
    cfg.policy = p;
    EXPECT_EQ(decide(cfg, 3, now, 0, 0, 0), AdmissionAction::kAdmit);
  }
  // Full pool: policy decides.
  cfg.policy = AdmissionPolicy::kBlock;
  EXPECT_EQ(decide(cfg, 0, now, 0, 0, 0), AdmissionAction::kBlock);
  cfg.policy = AdmissionPolicy::kShedNewest;
  EXPECT_EQ(decide(cfg, 0, now, 0, 0, 0), AdmissionAction::kShedIncoming);
  // kShedByDeadline: evict the queued request with the least slack, but only
  // when it is no more viable than the incoming one.
  cfg.policy = AdmissionPolicy::kShedByDeadline;
  const int64_t soon = now + 1'000'000, late = now + 9'000'000;
  EXPECT_EQ(decide(cfg, 0, now, /*deadline=*/0, /*victim=*/soon, 0),
            AdmissionAction::kEvictQueued);  // incoming is best-effort
  EXPECT_EQ(decide(cfg, 0, now, late, soon, 0), AdmissionAction::kEvictQueued);
  EXPECT_EQ(decide(cfg, 0, now, soon, late, 0),
            AdmissionAction::kShedIncoming);  // incoming least viable
  EXPECT_EQ(decide(cfg, 0, now, soon, /*victim=*/0, 0),
            AdmissionAction::kShedIncoming);  // no queued victim has a deadline
  // Infeasible deadlines are rejected before anything else — even with room.
  cfg.policy = AdmissionPolicy::kBlock;
  cfg.reject_infeasible = true;
  const int64_t floor_ns = 2'000'000;
  EXPECT_EQ(decide(cfg, 3, now, now + 1'000'000, 0, floor_ns), AdmissionAction::kReject);
  EXPECT_EQ(decide(cfg, 3, now, now + 3'000'000, 0, floor_ns), AdmissionAction::kAdmit);
  EXPECT_EQ(decide(cfg, 3, now, 0, 0, floor_ns), AdmissionAction::kAdmit);  // no deadline
  EXPECT_EQ(decide(cfg, 3, now, now + 1'000'000, 0, /*floor=*/0),
            AdmissionAction::kAdmit);  // uncalibrated: feasibility not checked
  cfg.service_margin = 2.0;  // margin widens the rejection band
  EXPECT_EQ(decide(cfg, 3, now, now + 3'000'000, 0, floor_ns), AdmissionAction::kReject);

  AdmissionConfig bad;
  bad.service_margin = 0.0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(AdmissionTest, PolicyParseRoundTrip) {
  for (const AdmissionPolicy p :
       {AdmissionPolicy::kBlock, AdmissionPolicy::kShedNewest, AdmissionPolicy::kShedByDeadline}) {
    AdmissionPolicy out;
    ASSERT_TRUE(parse_admission_policy(to_string(p), out));
    EXPECT_EQ(out, p);
  }
  AdmissionPolicy out;
  EXPECT_FALSE(parse_admission_policy("yolo", out));
}

TEST(WatchdogTest, BudgetOverrideAndCalibratedFloor) {
  WatchdogConfig cfg;
  cfg.min_budget_ms = 50;
  Watchdog wd(cfg, 2);
  EXPECT_EQ(wd.budget_ns(), 50'000'000);  // uncalibrated: the floor
  wd.set_calibrated_budget_ns(80'000'000);
  EXPECT_EQ(wd.budget_ns(), 80'000'000);
  wd.set_calibrated_budget_ns(10'000'000);  // below the floor: floored
  EXPECT_EQ(wd.budget_ns(), 50'000'000);
  cfg.budget_ms = 7;  // explicit override wins over both
  wd.set_config(cfg);
  EXPECT_EQ(wd.budget_ns(), 7'000'000);
  EXPECT_FALSE(wd.overdue(/*busy_since=*/0, /*now=*/7'000'000));
  EXPECT_TRUE(wd.overdue(0, 7'000'001));
  cfg.enabled = false;
  wd.set_config(cfg);
  EXPECT_FALSE(wd.overdue(0, 1'000'000'000));

  WatchdogConfig bad;
  bad.probation_passes = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  EXPECT_THROW(Watchdog(WatchdogConfig{}, 0), std::invalid_argument);
}

TEST(WatchdogTest, QuarantineProbationAndStrikes) {
  WatchdogConfig cfg;
  cfg.violation_strikes = 3;
  cfg.probation_interval_ms = 10;
  cfg.probation_passes = 2;
  Watchdog wd(cfg, 2);
  int64_t now = 1'000'000'000;

  EXPECT_TRUE(wd.quarantine(0, now, "stuck"));
  EXPECT_FALSE(wd.quarantine(0, now, "again"));  // already quarantined
  EXPECT_EQ(wd.healthy(), 1);
  EXPECT_EQ(wd.quarantined(), 1);
  EXPECT_EQ(wd.health(0), LaneHealth::kQuarantined);
  EXPECT_EQ(wd.lane(0).reason, "stuck");
  EXPECT_EQ(wd.quarantines_total(), 1);

  // The first probe waits a full probation interval after quarantine.
  EXPECT_FALSE(wd.probe_due(0, now + 9'999'999));
  EXPECT_TRUE(wd.probe_due(0, now + 10'000'000));
  EXPECT_FALSE(wd.probe_due(1, now + 10'000'000));  // healthy lanes: never
  wd.probe_started(0, now += 10'000'000);
  EXPECT_FALSE(wd.on_probe_result(0, /*pass=*/true, now));   // 1 of 2
  EXPECT_FALSE(wd.on_probe_result(0, /*pass=*/false, now));  // a failure resets
  EXPECT_FALSE(wd.on_probe_result(0, true, now));
  EXPECT_TRUE(wd.on_probe_result(0, true, now));  // 2 consecutive: readmitted
  EXPECT_EQ(wd.health(0), LaneHealth::kHealthy);
  EXPECT_EQ(wd.readmissions_total(), 1);

  // Sentinel-violation strikes are consecutive; a clean batch resets them.
  EXPECT_FALSE(wd.on_batch_violations(1, 2, now));
  EXPECT_FALSE(wd.on_batch_violations(1, 1, now));
  EXPECT_FALSE(wd.on_batch_violations(1, 0, now));  // reset
  EXPECT_FALSE(wd.on_batch_violations(1, 1, now));
  EXPECT_FALSE(wd.on_batch_violations(1, 1, now));
  EXPECT_TRUE(wd.on_batch_violations(1, 1, now));  // third consecutive strike
  EXPECT_EQ(wd.health(1), LaneHealth::kQuarantined);
  EXPECT_NE(wd.lane(1).reason.find("3 consecutive"), std::string::npos);
}

TEST(ChaosTest, InjectorFiresScheduledWindows) {
  ChaosSpec spec;
  spec.seed = 7;
  spec.stalls.push_back({/*lane=*/0, /*from=*/1, /*to=*/2, /*stall_ms=*/1});
  spec.faults.push_back({/*lane=*/1, /*from=*/0, /*to=*/0});
  ChaosInjector chaos(spec);
  chaos(0, 0);  // before the stall window: no-op
  chaos(0, 1);
  chaos(0, 2);
  chaos(0, 3);  // past the window
  EXPECT_EQ(chaos.stalls_fired(), 2);
  EXPECT_THROW(chaos(1, 0), ChaosFault);
  chaos(1, 1);  // past the fault window
  EXPECT_EQ(chaos.faults_fired(), 1);
  chaos(2, 0);  // unscheduled lane
  EXPECT_EQ(chaos.stalls_fired(), 2);
  EXPECT_EQ(chaos.faults_fired(), 1);
}

// --- Lifecycle: engine integration ----------------------------------------

TEST_F(ServeFixture, ExpiredDeadlineRejectsInstantlyWithoutASlot) {
  Session& s = engine_->session();
  engine_->drain();
  const EngineStats before = engine_->stats();

  const Ticket t = s.submit(engine_->data().test.slice(0, 1).first, /*deadline_us=*/-1);
  EXPECT_EQ(t.instant, static_cast<int8_t>(Outcome::kRejected));
  const Result r = s.await(t);
  EXPECT_EQ(r.outcome, Outcome::kRejected);
  EXPECT_FALSE(r.deadline_met);
  EXPECT_EQ(r.logits.numel(), 0);
  EXPECT_EQ(r.batch_size, 0);
  // Instant tickets are stateless: awaiting twice returns the same answer.
  EXPECT_EQ(s.await(t).outcome, Outcome::kRejected);

  const EngineStats after = engine_->stats();
  EXPECT_EQ(after.rejected, before.rejected + 1);
  EXPECT_EQ(after.deadline_misses, before.deadline_misses + 1);
  // No slot was consumed, no batch ran.
  EXPECT_EQ(after.batches, before.batches);
  EXPECT_EQ(after.requests, before.requests);
}

TEST_F(ServeFixture, InfeasibleDeadlineRejectedWhenConfigured) {
  Session& s = engine_->session();
  engine_->drain();
  // Load calibrated a service floor from latency probes.
  EXPECT_GT(engine_->service_floor_ns(), 0);

  AdmissionConfig strict;
  strict.reject_infeasible = true;
  engine_->set_admission(strict);
  EXPECT_TRUE(engine_->admission().reject_infeasible);

  const EngineStats before = engine_->stats();
  // 1 µs of slack is below any calibrated floor for this model.
  const Ticket t = s.submit(engine_->data().test.slice(0, 1).first, /*deadline_us=*/1);
  EXPECT_EQ(t.instant, static_cast<int8_t>(Outcome::kRejected));
  EXPECT_EQ(s.await(t).outcome, Outcome::kRejected);
  EXPECT_EQ(engine_->stats().rejected, before.rejected + 1);

  // A generous deadline still serves.
  const Result ok = s.await(s.submit(engine_->data().test.slice(0, 1).first, 5'000'000));
  EXPECT_EQ(ok.outcome, Outcome::kServed);

  AdmissionConfig bad;
  bad.service_margin = -1.0;
  EXPECT_THROW(engine_->set_admission(bad), std::invalid_argument);
  engine_->set_admission(AdmissionConfig{});
}

TEST_F(ServeFixture, ShedNewestUnderFullPool) {
  Session& s = engine_->session();
  engine_->drain();
  AdmissionConfig shed;
  shed.policy = AdmissionPolicy::kShedNewest;
  engine_->set_admission(shed);
  const EngineStats before = engine_->stats();

  // Fill the pool: slots stay owned until awaited, even once executed.
  const Tensor sample = engine_->data().test.slice(0, 1).first;
  std::vector<Ticket> held;
  for (int i = 0; i < kQueueCapacity; ++i) held.push_back(s.submit(sample));
  // The pool is exhausted: the next submit sheds instantly instead of
  // blocking.
  const Ticket extra = s.submit(sample);
  EXPECT_EQ(extra.instant, static_cast<int8_t>(Outcome::kShed));
  const Result r = s.await(extra);
  EXPECT_EQ(r.outcome, Outcome::kShed);
  EXPECT_EQ(r.logits.numel(), 0);

  for (const Ticket& t : held) EXPECT_EQ(s.await(t).outcome, Outcome::kServed);
  const EngineStats after = engine_->stats();
  EXPECT_EQ(after.shed, before.shed + 1);
  EXPECT_EQ(after.queue_full_waits, before.queue_full_waits);  // nobody blocked
  engine_->set_admission(AdmissionConfig{});
}

TEST_F(ServeFixture, CloseSessionRacesInflightTrafficAndDrain) {
  const data::Dataset& test = engine_->data().test;
  Session& eph = engine_->open_session("ephemeral", kApproxPlan);

  // Phase 1: concurrent tenant traffic racing engine drains.
  std::atomic<bool> stop{false};
  std::atomic<int> served{0};
  std::atomic<int> bad{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      int i = c;
      while (!stop.load()) {
        const Result r = eph.await(eph.submit(test.slice(i++ % test.size(), 1).first));
        r.outcome == Outcome::kServed ? ++served : ++bad;
      }
    });
  }
  for (int i = 0; i < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    engine_->drain();  // must coexist with live submits
  }
  stop = true;
  for (auto& t : clients) t.join();
  EXPECT_GT(served.load(), 0);
  EXPECT_EQ(bad.load(), 0);

  // Phase 2: close while a ticket is still unawaited. close_session blocks
  // until the session owns no slots, and submits racing it throw.
  const Ticket held = eph.submit(test.slice(0, 1).first);
  std::thread closer([&] { engine_->close_session("ephemeral"); });
  for (;;) {
    try {
      const Ticket t = eph.submit(test.slice(0, 1).first);
      (void)eph.await(t);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    } catch (const std::logic_error&) {
      break;  // closing_ observed: new submits are refused
    }
  }
  // The accepted request still resolves; only then can the close finish.
  EXPECT_EQ(eph.await(held).outcome, Outcome::kServed);
  closer.join();

  // The name is reusable, and the engine still serves.
  EXPECT_THROW(engine_->close_session("ephemeral"), std::invalid_argument);
  EXPECT_THROW(engine_->close_session("default"), std::invalid_argument);
  Session& again = engine_->open_session("ephemeral", kApproxPlan);
  EXPECT_EQ(again.await(again.submit(test.slice(0, 1).first)).outcome, Outcome::kServed);
  engine_->close_session("ephemeral");
}

TEST_F(ServeFixture, ReloadValidatesBeforePausingDispatch) {
  ReloadSpec both;
  both.weights = "weights.axnp";
  both.from_checkpoint = true;
  EXPECT_THROW(engine_->reload(both), std::invalid_argument);
  ReloadSpec ckpt;
  ckpt.from_checkpoint = true;  // engine loaded without checkpoint_dir
  EXPECT_THROW(engine_->reload(ckpt), std::logic_error);
  EXPECT_THROW(engine_->save_checkpoint(), std::logic_error);
  ReloadSpec ladder;
  ladder.qos_points = "full:default=trunc5";  // engine loaded without a ladder
  EXPECT_THROW(engine_->reload(ladder), std::logic_error);
  ReloadSpec badplan;
  badplan.plan = "default=no_such_mul";
  EXPECT_THROW(engine_->reload(badplan), std::invalid_argument);
  // A failed reload leaves serving untouched.
  Session& s = engine_->session();
  EXPECT_EQ(s.await(s.submit(engine_->data().test.slice(0, 1).first)).outcome,
            Outcome::kServed);
}

TEST_F(ServeFixture, ReloadSwapsDefaultPlanUnderLiveTraffic) {
  const data::Dataset& test = engine_->data().test;
  Session& s = engine_->session();
  engine_->drain();
  const EngineStats before = engine_->stats();

  // Background traffic across the swap: zero failed requests is the reload
  // contract, not best-effort.
  std::atomic<bool> stop{false};
  std::atomic<int> served{0};
  std::atomic<int> errors{0};
  std::thread traffic([&] {
    int i = 0;
    while (!stop.load()) {
      try {
        const Result r = s.await(s.submit(test.slice(i++ % test.size(), 1).first));
        if (r.outcome == Outcome::kServed) ++served;
      } catch (...) {
        ++errors;
        break;
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));

  ReloadSpec to_exact;
  to_exact.plan = kExactPlan;
  engine_->reload(to_exact);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  stop = true;
  traffic.join();
  engine_->drain();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_GT(served.load(), 0);

  // The default session now serves exact arithmetic: bit-identical to the
  // "exact" tenant's reference.
  const Tensor sample = test.slice(0, 1).first;
  const Result r = s.await(s.submit(sample));
  engine_->drain();
  const Tensor exact_ref = reference_logits(*engine_, *exact_, sample);
  ASSERT_EQ(r.logits.numel(), exact_ref.numel());
  for (int64_t j = 0; j < exact_ref.numel(); ++j) ASSERT_EQ(r.logits[j], exact_ref[j]);

  // Swap back; the approximate path returns bit-identically too.
  ReloadSpec to_approx;
  to_approx.plan = kApproxPlan;
  engine_->reload(to_approx);
  const Result r2 = s.await(s.submit(sample));
  engine_->drain();
  const Tensor approx_ref = reference_logits(*engine_, s, sample);
  bool differs = false;
  for (int64_t j = 0; j < approx_ref.numel(); ++j) {
    ASSERT_EQ(r2.logits[j], approx_ref[j]);
    differs = differs || approx_ref[j] != exact_ref[j];
  }
  EXPECT_TRUE(differs);

  const EngineStats after = engine_->stats();
  EXPECT_EQ(after.reloads, before.reloads + 2);
  EXPECT_EQ(after.failed_requests, before.failed_requests);
}

TEST_F(ServeFixture, StalledLaneIsQuarantinedBatchRetriedElsewhereAndReadmitted) {
  Session& s = engine_->session();
  const data::Dataset& test = engine_->data().test;
  engine_->drain();
  ASSERT_EQ(engine_->lanes(), 2);
  ASSERT_EQ(engine_->healthy_lanes(), 2);
  const EngineStats before = engine_->stats();

  // Tight explicit budget so the stall trips deterministically; quick
  // probation so the test doesn't dawdle.
  WatchdogConfig wd;
  wd.budget_ms = 150;
  wd.probation_interval_ms = 25;
  wd.probation_passes = 2;
  engine_->set_watchdog(wd);
  // Stall the next batch dispatched to lane 0 well past the budget.
  std::atomic<bool> armed{true};
  engine_->set_chaos([&](int lane, int64_t) {
    if (lane == 0 && armed.exchange(false))
      std::this_thread::sleep_for(std::chrono::milliseconds(600));
  });

  // One full batch lands on lane 0 (the first idle lane), stalls, is
  // abandoned by the watchdog and re-run on lane 1 — every request still
  // serves.
  std::vector<Ticket> tickets;
  for (int i = 0; i < kMaxBatch; ++i) tickets.push_back(s.submit(test.slice(i, 1).first));
  for (const Ticket& t : tickets) {
    const Result r = s.await(t);
    EXPECT_EQ(r.outcome, Outcome::kServed);
    EXPECT_EQ(r.batch_size, kMaxBatch);
  }
  EngineStats after = engine_->stats();
  EXPECT_EQ(after.quarantines, before.quarantines + 1);
  EXPECT_EQ(after.requeued_batches, before.requeued_batches + 1);
  EXPECT_EQ(after.failed_requests, before.failed_requests);

  // Probation: golden-input probes on the lane's own worker readmit it once
  // the straggler finishes sleeping and the probes pass.
  for (int i = 0; i < 1000 && engine_->healthy_lanes() < 2; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(engine_->healthy_lanes(), 2);
  EXPECT_EQ(engine_->lane_health(0), LaneHealth::kHealthy);
  after = engine_->stats();
  EXPECT_EQ(after.readmissions, before.readmissions + 1);
  EXPECT_EQ(after.lanes_quarantined, 0);
  EXPECT_GE(after.probes, before.probes + wd.probation_passes);
  // The straggler's late result was discarded, not delivered.
  EXPECT_EQ(after.discarded_batches, before.discarded_batches + 1);

  engine_->set_chaos(nullptr);
  engine_->set_watchdog(WatchdogConfig{});

  // The readmitted lane serves bit-identical traffic again.
  engine_->drain();
  const Tensor sample = test.slice(0, 1).first;
  const Result r = s.await(s.submit(sample));
  engine_->drain();
  const Tensor ref = reference_logits(*engine_, s, sample);
  for (int64_t j = 0; j < ref.numel(); ++j) ASSERT_EQ(r.logits[j], ref[j]);
}

}  // namespace
}  // namespace axnn::serve
