// PlanCache tests: key stability and identity, plan sharing across call
// sites (the lane/session topology of the serving runtime), LRU eviction at
// bounded capacity, eviction safety for live handles, and thread-safe
// concurrent acquire under eviction churn. The LUT-fingerprint tests pin the
// property the fault-injection experiments rely on: a mutated copy of a
// multiplier table can never alias the clean table's cached plans.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "axnn/axnn.hpp"

namespace axnn::kernels {
namespace {

approx::SignedMulTable trunc5_table() {
  return approx::SignedMulTable(axmul::make_lut("trunc5"));
}

/// Naive reference: C[M,N] = W ·~ X through the table.
std::vector<int32_t> naive_approx(const std::vector<int8_t>& w, const std::vector<int8_t>& x,
                                  int64_t m, int64_t k, int64_t n,
                                  const approx::SignedMulTable& tab) {
  std::vector<int32_t> c(static_cast<size_t>(m * n), 0);
  for (int64_t i = 0; i < m; ++i)
    for (int64_t j = 0; j < n; ++j) {
      int32_t acc = 0;
      for (int64_t kk = 0; kk < k; ++kk) {
        const int8_t qw = w[static_cast<size_t>(i * k + kk)];
        if (qw != 0) acc += tab(x[static_cast<size_t>(kk * n + j)], qw);
      }
      c[static_cast<size_t>(i * n + j)] = acc;
    }
  return c;
}

std::vector<int8_t> pattern_operand(int64_t count, int lo, int hi, int seed) {
  std::vector<int8_t> v(static_cast<size_t>(count));
  const int span = hi - lo + 1;
  for (int64_t i = 0; i < count; ++i)
    v[static_cast<size_t>(i)] = static_cast<int8_t>(lo + (seed + 7 * i) % span);
  return v;
}

TEST(PlanKey, StableAcrossIdenticalInputs) {
  const approx::SignedMulTable tab = trunc5_table();
  const PlanKey a = make_int_key(OpKind::kApprox, {}, 16, 32, 24, Backend::kBlocked, &tab);
  const PlanKey b = make_int_key(OpKind::kApprox, {}, 16, 32, 24, Backend::kBlocked, &tab);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(PlanKeyHash{}(a), PlanKeyHash{}(b));
  EXPECT_EQ(a.to_string(), b.to_string());
  // A pristine table's fingerprint is memoized, so key construction is
  // repeatable even across separate copies of the same table.
  const approx::SignedMulTable copy = tab;
  const PlanKey c = make_int_key(OpKind::kApprox, {}, 16, 32, 24, Backend::kBlocked, &copy);
  EXPECT_TRUE(a == c);
}

TEST(PlanKey, DistinguishesEverythingThatChangesCodegen) {
  const approx::SignedMulTable tab = trunc5_table();
  const PlanKey base = make_int_key(OpKind::kApprox, {}, 16, 32, 24, Backend::kBlocked, &tab);
  EXPECT_FALSE(base ==
               make_int_key(OpKind::kApprox, {}, 17, 32, 24, Backend::kBlocked, &tab));
  EXPECT_FALSE(base ==
               make_int_key(OpKind::kExactInt, {}, 16, 32, 24, Backend::kBlocked, nullptr));
  EXPECT_FALSE(base ==
               make_int_key(OpKind::kApprox, {}, 16, 32, 24, Backend::kNaive, &tab));
  EXPECT_FALSE(base == make_int_key(OpKind::kApprox, {}, 16, 32, 24, Backend::kBlocked,
                                    &tab, /*weight_bits=*/3));
  GemmDesc acc;
  acc.accumulate = true;
  EXPECT_FALSE(base == make_int_key(OpKind::kApprox, acc, 16, 32, 24, Backend::kBlocked, &tab));
}

TEST(PlanKey, MutatedTableNeverAliasesCleanPlans) {
  const approx::SignedMulTable clean = trunc5_table();
  approx::SignedMulTable faulty = clean;
  faulty.mutable_data()[approx::SignedMulTable::index(3, 5)] ^= 0x40;  // stuck bit
  EXPECT_TRUE(faulty.tainted());
  EXPECT_NE(clean.fingerprint(), faulty.fingerprint());

  const PlanKey kc = make_int_key(OpKind::kApprox, {}, 8, 16, 8, Backend::kBlocked, &clean);
  const PlanKey kf = make_int_key(OpKind::kApprox, {}, 8, 16, 8, Backend::kBlocked, &faulty);
  EXPECT_FALSE(kc == kf);

  PlanCache cache(8);
  const PlanHandle pc = cache.acquire(kc, &clean);
  const PlanHandle pf = cache.acquire(kf, &faulty);
  EXPECT_NE(pc.get(), pf.get());
  // Healing the fault (copy-assign from the clean table) restores the clean
  // fingerprint, so the repaired copy shares the clean table's plans again.
  faulty = clean;
  const PlanKey kh = make_int_key(OpKind::kApprox, {}, 8, 16, 8, Backend::kBlocked, &faulty);
  EXPECT_TRUE(kc == kh);
  EXPECT_EQ(cache.acquire(kh, &faulty).get(), pc.get());
}

TEST(PlanCacheTest, SharesOnePlanAcrossCallSites) {
  // Two memos model two lanes (or sessions) executing the same leaf shape:
  // both must resolve to the same underlying GemmPlan, acquired from the
  // global cache exactly once.
  const approx::SignedMulTable tab = trunc5_table();
  const PlanKey key = make_int_key(OpKind::kApprox, {}, 12, 48, 20, Backend::kBlocked, &tab);

  PlanMemo lane_a, lane_b;
  const PlanHandle& ha = lane_a.find_or_acquire(key, &tab);
  const PlanHandle& hb = lane_b.find_or_acquire(key, &tab);
  ASSERT_NE(ha.get(), nullptr);
  EXPECT_EQ(ha.get(), hb.get());

  // Repeat lookups hit the memo, not the mutex — and still count as cache
  // hits in the global stats (memos are a front-side cache).
  PlanCache::global().reset_stats();
  for (int i = 0; i < 5; ++i) (void)lane_a.find_or_acquire(key, &tab);
  const PlanCacheStats st = PlanCache::global().stats();
  EXPECT_EQ(st.hits, 5);
  EXPECT_EQ(st.misses, 0);

  const std::vector<PlanKey> memoized = lane_a.keys();
  ASSERT_EQ(memoized.size(), 1u);
  EXPECT_TRUE(memoized[0] == key);
}

TEST(PlanCacheTest, LruEvictionAtCapacity) {
  const approx::SignedMulTable tab = trunc5_table();
  auto key_m = [&](int64_t m) {
    return make_int_key(OpKind::kApprox, {}, m, 32, 16, Backend::kBlocked, &tab);
  };

  PlanCache cache(3);
  const PlanHandle p8 = cache.acquire(key_m(8), &tab);
  (void)cache.acquire(key_m(16), &tab);
  (void)cache.acquire(key_m(24), &tab);
  EXPECT_EQ(cache.stats().size, 3);
  EXPECT_EQ(cache.stats().evictions, 0);

  // Touch the oldest entry, then overflow: the least-recently-used entry is
  // now key_m(16), and it — not the touched key_m(8) — must be evicted.
  EXPECT_EQ(cache.acquire(key_m(8), &tab).get(), p8.get());
  (void)cache.acquire(key_m(40), &tab);
  EXPECT_EQ(cache.stats().size, 3);
  EXPECT_EQ(cache.stats().evictions, 1);

  cache.reset_stats();
  EXPECT_EQ(cache.acquire(key_m(8), &tab).get(), p8.get());  // survived (hit)
  EXPECT_EQ(cache.stats().hits, 1);
  (void)cache.acquire(key_m(16), &tab);  // evicted (miss → rebuild)
  EXPECT_EQ(cache.stats().misses, 1);
}

TEST(PlanCacheTest, EvictedPlanStaysValidForLiveHandles) {
  const approx::SignedMulTable tab = trunc5_table();
  constexpr int64_t m = 8, k = 32, n = 16;
  const PlanKey key = make_int_key(OpKind::kApprox, {}, m, k, n, Backend::kBlocked, &tab);

  PlanCache cache(1);
  const PlanHandle plan = cache.acquire(key, &tab);
  // Push the held plan out of the cache entirely.
  for (int64_t mm = 1; mm <= 4; ++mm)
    (void)cache.acquire(make_int_key(OpKind::kApprox, {}, mm, k, n, Backend::kBlocked, &tab),
                        &tab);
  EXPECT_EQ(cache.stats().size, 1);
  EXPECT_GE(cache.stats().evictions, 4);

  // The evicted plan still executes correctly — eviction only drops the
  // cache's reference, never the plan a handle keeps alive.
  const std::vector<int8_t> w = pattern_operand(m * k, -7, 7, 1);
  const std::vector<int8_t> x = pattern_operand(k * n, -128, 127, 3);
  std::vector<int32_t> c(static_cast<size_t>(m * n), 0);
  plan->run_int(w.data(), x.data(), c.data());
  EXPECT_EQ(c, naive_approx(w, x, m, k, n, tab));
}

TEST(PlanCacheTest, ConcurrentAcquireUnderEvictionChurn) {
  const approx::SignedMulTable tab = trunc5_table();
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  // Capacity below the working set: acquires constantly build and evict, so
  // this exercises the build-outside-the-lock race paths, not just lookups.
  PlanCache cache(4);

  std::vector<std::thread> threads;
  std::vector<int> failures(kThreads, 0);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        const int64_t m = 4 + 4 * ((t + i) % 6);  // 6 distinct keys > capacity
        const PlanKey key =
            make_int_key(OpKind::kApprox, {}, m, 32, 16, Backend::kBlocked, &tab);
        const PlanHandle h = cache.acquire(key, &tab);
        if (h == nullptr || !(h->key() == key)) ++failures[static_cast<size_t>(t)];
      }
    });
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(failures[static_cast<size_t>(t)], 0);

  const PlanCacheStats st = cache.stats();
  EXPECT_EQ(st.hits + st.misses, int64_t{kThreads} * kIters);
  EXPECT_LE(st.size, 4);
}

}  // namespace
}  // namespace axnn::kernels
