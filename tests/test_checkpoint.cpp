// Tests for hardened checkpoints: AXNP v3 CRC footer, atomic writes,
// corruption rejection, v2 compatibility, and the Workbench treating any
// unusable cache as a cache miss.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <string>

#include "axnn/core/pipeline.hpp"
#include "axnn/nn/activations.hpp"
#include "axnn/nn/conv2d.hpp"
#include "axnn/nn/linear.hpp"
#include "axnn/nn/pooling.hpp"
#include "axnn/nn/sequential.hpp"
#include "axnn/nn/serialize.hpp"
#include "axnn/resilience/checkpoint.hpp"
#include "axnn/tensor/rng.hpp"

namespace axnn::nn {
namespace {

namespace fs = std::filesystem;

std::unique_ptr<Sequential> tiny_net(uint64_t seed = 5) {
  Rng rng(seed);
  auto net = std::make_unique<Sequential>("tiny");
  net->emplace<Conv2d>(Conv2dConfig{3, 4, 3, 1, 1, 1, true}, rng);
  net->emplace<ReLU>();
  net->emplace<GlobalAvgPool>();
  net->emplace<Linear>(4, 10, rng);
  return net;
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
}

void write_file(const std::string& path, const std::string& buf) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f.write(buf.data(), static_cast<std::streamsize>(buf.size()));
}

std::string message_of(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

class CheckpointFile : public ::testing::Test {
protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / "axnn_ckpt_test").string();
    fs::create_directories(dir_);
    path_ = dir_ + "/net.axnp";
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_, path_;
};

TEST_F(CheckpointFile, V3RoundTripRestoresEveryParameter) {
  auto src = tiny_net(5);
  save_params(*src, path_);
  EXPECT_TRUE(is_param_file(path_));
  EXPECT_FALSE(fs::exists(path_ + ".tmp"));  // atomic write left no temp file

  auto dst = tiny_net(99);  // different init, same structure
  load_params(*dst, path_);
  const auto ps = collect_params(*src), pd = collect_params(*dst);
  ASSERT_EQ(ps.size(), pd.size());
  for (size_t i = 0; i < ps.size(); ++i) {
    ASSERT_EQ(ps[i]->value.shape(), pd[i]->value.shape());
    for (int64_t j = 0; j < ps[i]->value.numel(); ++j)
      EXPECT_EQ(ps[i]->value[j], pd[i]->value[j]);
  }
}

TEST_F(CheckpointFile, V2FilesStayLoadable) {
  auto src = tiny_net(5);
  save_params(*src, path_, /*version=*/2);
  EXPECT_TRUE(is_param_file(path_));
  auto dst = tiny_net(99);
  load_params(*dst, path_);  // no CRC footer, must still load
  const auto ps = collect_params(*src), pd = collect_params(*dst);
  for (size_t i = 0; i < ps.size(); ++i)
    for (int64_t j = 0; j < ps[i]->value.numel(); ++j)
      EXPECT_EQ(ps[i]->value[j], pd[i]->value[j]);
}

TEST_F(CheckpointFile, RejectsUnsupportedSaveVersion) {
  auto net = tiny_net();
  EXPECT_THROW(save_params(*net, path_, 1), std::invalid_argument);
  EXPECT_THROW(save_params(*net, path_, 4), std::invalid_argument);
}

TEST_F(CheckpointFile, TruncationDetected) {
  auto net = tiny_net();
  save_params(*net, path_);
  const std::string full = read_file(path_);
  // Any truncation point must be rejected: the CRC footer covers short cuts
  // and the bounds-checked reader covers the rest.
  for (const size_t keep : {full.size() - 1, full.size() / 2, size_t{10}, size_t{0}}) {
    write_file(path_, full.substr(0, keep));
    auto dst = tiny_net();
    EXPECT_THROW(load_params(*dst, path_), std::runtime_error) << "kept " << keep;
  }
}

TEST_F(CheckpointFile, BitFlipDetectedByChecksum) {
  auto net = tiny_net();
  save_params(*net, path_);
  std::string buf = read_file(path_);
  buf[buf.size() / 2] ^= 0x04;  // single bit flip in the payload
  write_file(path_, buf);
  auto dst = tiny_net();
  const std::string msg = message_of([&] { load_params(*dst, path_); });
  EXPECT_NE(msg.find("checksum mismatch"), std::string::npos) << msg;
}

TEST_F(CheckpointFile, MemoryLoadMatchesFileLoad) {
  auto src = tiny_net(5);
  save_params(*src, path_);
  const std::string image = read_file(path_);

  // The fuzz-harness entry point decodes the same image byte-for-byte.
  auto dst = tiny_net(99);
  load_params_from_memory(*dst, image.data(), image.size(), "image");
  const auto ps = collect_params(*src), pd = collect_params(*dst);
  ASSERT_EQ(ps.size(), pd.size());
  for (size_t i = 0; i < ps.size(); ++i)
    for (int64_t j = 0; j < ps[i]->value.numel(); ++j)
      EXPECT_EQ(ps[i]->value[j], pd[i]->value[j]);

  // And rejects truncations with the caller-supplied name in the message.
  auto dst2 = tiny_net(99);
  const std::string msg = message_of(
      [&] { load_params_from_memory(*dst2, image.data(), image.size() / 2, "image"); });
  EXPECT_NE(msg.find("image"), std::string::npos) << msg;
}

TEST_F(CheckpointFile, ShapeMismatchNamesParameterAndShapes) {
  auto src = tiny_net();
  save_params(*src, path_);
  // Structurally different net: first conv has 8 channels instead of 4.
  Rng rng(7);
  auto other = std::make_unique<Sequential>("other");
  other->emplace<Conv2d>(Conv2dConfig{3, 8, 3, 1, 1, 1, true}, rng);
  other->emplace<ReLU>();
  other->emplace<GlobalAvgPool>();
  other->emplace<Linear>(8, 10, rng);
  const std::string msg = message_of([&] { load_params(*other, path_); });
  EXPECT_NE(msg.find("param 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("expected"), std::string::npos) << msg;
  EXPECT_NE(msg.find(collect_params(*other)[0]->value.shape().to_string()), std::string::npos)
      << msg;
}

TEST_F(CheckpointFile, CountMismatchReported) {
  auto src = tiny_net();
  save_params(*src, path_);
  Rng rng(7);
  auto shallow = std::make_unique<Sequential>("shallow");
  shallow->emplace<GlobalAvgPool>();
  shallow->emplace<Linear>(3, 10, rng);
  const std::string msg = message_of([&] { load_params(*shallow, path_); });
  EXPECT_NE(msg.find("state count mismatch"), std::string::npos) << msg;
}

TEST_F(CheckpointFile, IsParamFileSafeOnGarbage) {
  EXPECT_FALSE(is_param_file(dir_ + "/does_not_exist.axnp"));
  write_file(path_, "");
  EXPECT_FALSE(is_param_file(path_));
  write_file(path_, "AX");  // shorter than the magic
  EXPECT_FALSE(is_param_file(path_));
  write_file(path_, "AXNP");  // magic but no version
  EXPECT_FALSE(is_param_file(path_));
  write_file(path_, std::string("AXNP") + std::string(4, '\x09'));  // wild version
  EXPECT_FALSE(is_param_file(path_));
  write_file(path_, "NOPE1234");
  EXPECT_FALSE(is_param_file(path_));
}

// ---------------------------------------------------------------------------
// CheckpointSet rotation: keep-N generations with corrupt-newest fallback
// (the serving engine's crash-safety store, DESIGN.md §5k).

class CheckpointRotation : public ::testing::Test {
protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / "axnn_ckpt_rotation").string();
    fs::remove_all(dir_);
    cfg_.dir = dir_;
    cfg_.stem = "model";
    cfg_.keep = 3;
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
  resilience::CheckpointConfig cfg_;
};

TEST_F(CheckpointRotation, ConfigValidation) {
  resilience::CheckpointConfig bad = cfg_;
  bad.dir = "";
  EXPECT_THROW(resilience::CheckpointSet{bad}, std::invalid_argument);
  bad = cfg_;
  bad.keep = 0;
  EXPECT_THROW(resilience::CheckpointSet{bad}, std::invalid_argument);
  bad = cfg_;
  bad.stem = "";
  EXPECT_THROW(resilience::CheckpointSet{bad}, std::invalid_argument);
}

TEST_F(CheckpointRotation, KeepsNewestNGenerations) {
  resilience::CheckpointSet set(cfg_);
  EXPECT_EQ(set.latest_generation(), -1);
  EXPECT_TRUE(set.generations().empty());

  std::vector<std::string> written;
  for (int i = 0; i < 5; ++i)
    written.push_back(set.save([&](const std::string& p) { write_file(p, "gen"); }));
  EXPECT_EQ(set.latest_generation(), 4);

  // Only the 3 newest survive, listed newest first.
  const auto gens = set.generations();
  ASSERT_EQ(gens.size(), 3u);
  EXPECT_EQ(gens[0], written[4]);
  EXPECT_EQ(gens[1], written[3]);
  EXPECT_EQ(gens[2], written[2]);
  EXPECT_FALSE(fs::exists(written[0]));
  EXPECT_FALSE(fs::exists(written[1]));
}

TEST_F(CheckpointRotation, FailedWriterLeavesSetUnchanged) {
  resilience::CheckpointSet set(cfg_);
  (void)set.save([&](const std::string& p) { write_file(p, "ok"); });
  EXPECT_THROW(set.save([](const std::string&) { throw std::runtime_error("disk full"); }),
               std::runtime_error);
  EXPECT_EQ(set.generations().size(), 1u);
  EXPECT_EQ(set.latest_generation(), 0);
}

TEST_F(CheckpointRotation, LoadLatestFallsBackPastCorruptGenerations) {
  resilience::CheckpointSet set(cfg_);
  const std::string good = set.save([&](const std::string& p) { write_file(p, "good"); });
  const std::string corrupt = set.save([&](const std::string& p) { write_file(p, "bad"); });

  // The loader rejects the newest generation; the previous one is used.
  const std::string loaded = set.load_latest([&](const std::string& p) {
    if (read_file(p) != "good") throw std::runtime_error("checksum mismatch");
  });
  EXPECT_EQ(loaded, good);
  (void)corrupt;

  // No loadable generation: the error names every rejected one.
  const std::string msg = message_of([&] {
    set.load_latest([](const std::string&) { throw std::runtime_error("checksum mismatch"); });
  });
  EXPECT_NE(msg.find("no loadable generation"), std::string::npos) << msg;
  EXPECT_NE(msg.find("gen 0"), std::string::npos) << msg;
  EXPECT_NE(msg.find("gen 1"), std::string::npos) << msg;
}

TEST_F(CheckpointRotation, RotatesRealParamFilesWithCrcFallback) {
  // The engine's actual wiring: nn::save_params as the writer, a CRC-checked
  // nn::load_params as the loader. Corrupting the newest generation falls
  // back to the previous weights instead of failing the reload.
  auto gen0 = tiny_net(5);
  auto gen1 = tiny_net(11);
  resilience::CheckpointSet set(cfg_);
  (void)set.save([&](const std::string& p) { save_params(*gen0, p); });
  const std::string newest = set.save([&](const std::string& p) { save_params(*gen1, p); });

  std::string buf = read_file(newest);
  buf[buf.size() / 2] ^= 0x10;
  write_file(newest, buf);

  auto restored = tiny_net(99);
  const std::string loaded =
      set.load_latest([&](const std::string& p) { load_params(*restored, p); });
  EXPECT_NE(loaded, newest);
  const auto ps = collect_params(*gen0), pr = collect_params(*restored);
  ASSERT_EQ(ps.size(), pr.size());
  for (size_t i = 0; i < ps.size(); ++i)
    for (int64_t j = 0; j < ps[i]->value.numel(); ++j)
      EXPECT_EQ(ps[i]->value[j], pr[i]->value[j]);
}

// ---------------------------------------------------------------------------
// Workbench cache resilience: any unusable cache is a cache miss.

class WorkbenchCache : public ::testing::Test {
protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / "axnn_ckpt_wb_cache").string();
    fs::remove_all(dir_);
    cfg_.model = core::ModelKind::kResNet20;
    cfg_.profile.image_size = 8;
    cfg_.profile.train_size = 160;
    cfg_.profile.test_size = 80;
    cfg_.profile.resnet_width = 0.25f;
    cfg_.profile.fp_epochs = 3;
    cfg_.profile.ft_epochs = 1;
    cfg_.profile.ft_batch = 40;
    cfg_.profile.quant_epochs = 1;
    cfg_.profile.cache_dir = dir_;
    cfg_.calib_samples = 80;
    cfg_.use_cache = true;
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string fp_cache() const {
    for (const auto& e : fs::directory_iterator(dir_)) {
      const std::string name = e.path().filename().string();
      if (name.rfind("fp_", 0) == 0) return e.path().string();
    }
    return "";
  }

  std::string dir_;
  core::WorkbenchConfig cfg_;
};

TEST_F(WorkbenchCache, CorruptedCacheFallsBackToRetraining) {
  const double fp1 = core::Workbench(cfg_).fp_accuracy();  // populates the cache
  const std::string path = fp_cache();
  ASSERT_FALSE(path.empty());

  // Corrupt the cached FP weights with a mid-file bit flip.
  std::string buf = read_file(path);
  buf[buf.size() / 2] ^= 0x20;
  write_file(path, buf);

  // The second workbench must warn, retrain, and reach the same accuracy
  // (training is deterministic given the seeds) — never throw.
  const core::Workbench second(cfg_);
  EXPECT_DOUBLE_EQ(second.fp_accuracy(), fp1);

  // The retrain repaired the cache: a third workbench loads it cleanly.
  EXPECT_TRUE(is_param_file(path));
  const core::Workbench third(cfg_);
  EXPECT_DOUBLE_EQ(third.fp_accuracy(), fp1);
}

TEST_F(WorkbenchCache, GarbageCacheFileIsIgnored) {
  const double fp1 = core::Workbench(cfg_).fp_accuracy();
  const std::string path = fp_cache();
  ASSERT_FALSE(path.empty());
  write_file(path, "this is not a checkpoint");
  const core::Workbench second(cfg_);
  EXPECT_DOUBLE_EQ(second.fp_accuracy(), fp1);
}

}  // namespace
}  // namespace axnn::nn
