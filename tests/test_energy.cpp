// Tests for the MAC-level energy model.
#include <gtest/gtest.h>

#include "axnn/axmul/registry.hpp"
#include "axnn/energy/energy.hpp"

namespace axnn::energy {
namespace {

TEST(Energy, ExactMultiplierSavesNothing) {
  const auto spec = *axmul::find_spec("exact");
  const auto e = estimate(1000, spec);
  EXPECT_DOUBLE_EQ(e.exact_energy, 1000.0);
  EXPECT_DOUBLE_EQ(e.approx_energy, 1000.0);
  EXPECT_DOUBLE_EQ(e.savings_pct, 0.0);
}

TEST(Energy, SavingsMatchMultiplierMetadata) {
  // The paper's accounting: uniform approximation -> network savings equal
  // the per-multiplier savings.
  for (const char* id : {"trunc3", "trunc5", "evoa228", "evoa249"}) {
    const auto spec = *axmul::find_spec(id);
    const auto e = estimate(123456, spec);
    EXPECT_NEAR(e.savings_pct, spec.energy_savings_pct, 1e-9) << id;
  }
}

TEST(Energy, MultiplierFractionScalesSavings) {
  const auto spec = *axmul::find_spec("trunc5");  // 38%
  EnergyModel model;
  model.multiplier_fraction = 0.5;
  const auto e = estimate(1000, spec, model);
  EXPECT_NEAR(e.savings_pct, 19.0, 1e-9);
}

TEST(Energy, ZeroMacs) {
  const auto e = estimate(0, *axmul::find_spec("trunc5"));
  EXPECT_DOUBLE_EQ(e.savings_pct, 0.0);
  EXPECT_DOUBLE_EQ(e.approx_energy, 0.0);
}

TEST(Energy, InputValidation) {
  const auto spec = *axmul::find_spec("trunc5");
  EXPECT_THROW(estimate(-1, spec), std::invalid_argument);
  EnergyModel bad;
  bad.multiplier_fraction = 1.5;
  EXPECT_THROW(estimate(1, spec, bad), std::invalid_argument);
}

TEST(Energy, MoreAggressiveMultiplierSavesMore) {
  const auto e3 = estimate(1000, *axmul::find_spec("trunc3"));
  const auto e5 = estimate(1000, *axmul::find_spec("trunc5"));
  EXPECT_LT(e5.approx_energy, e3.approx_energy);
}

}  // namespace
}  // namespace axnn::energy
