// Golden-reference tests for the unified axnn::kernels dispatch layer:
// kBlocked must agree with kNaive (the original triple-loop kernels) for
// every transpose/accumulate variant across odd shapes, the integer paths
// must match bit-for-bit, and results must be bit-identical across thread
// counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "axnn/approx/kernels.hpp"
#include "axnn/approx/approx_gemm.hpp"
#include "axnn/axmul/adder.hpp"
#include "axnn/axmul/registry.hpp"
#include "axnn/kernels/isa.hpp"
#include "axnn/tensor/gemm.hpp"
#include "axnn/tensor/kernels.hpp"
#include "axnn/tensor/rng.hpp"
#include "axnn/tensor/tensor.hpp"
#include "axnn/tensor/threadpool.hpp"

namespace {

using namespace axnn;
using kernels::Backend;
using kernels::GemmDesc;

constexpr int64_t kDims[] = {1, 3, 17, 64, 129};

std::vector<float> random_floats(int64_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(static_cast<size_t>(n));
  for (auto& x : v) x = static_cast<float>(rng.normal());
  return v;
}

std::vector<int8_t> random_i8(int64_t n, uint64_t seed, int lo, int hi) {
  Rng rng(seed);
  std::vector<int8_t> v(static_cast<size_t>(n));
  for (auto& x : v) x = static_cast<int8_t>(lo + rng.uniform_int(hi - lo + 1));
  return v;
}

void expect_close(const std::vector<float>& ref, const std::vector<float>& got,
                  int64_t k, const char* what) {
  ASSERT_EQ(ref.size(), got.size());
  // Both backends accumulate in float (k rounding steps) except the naive
  // NT/TT paths, which use double; scale the tolerance with k.
  const float tol = 1e-5f * static_cast<float>(std::max<int64_t>(k, 1));
  for (size_t i = 0; i < ref.size(); ++i) {
    ASSERT_NEAR(ref[i], got[i], tol * (1.0f + std::abs(ref[i])))
        << what << " at flat index " << i;
  }
}

// ---------------------------------------------------------------------------
// Float GEMM: blocked vs naive for every transpose/accumulate combination.
// ---------------------------------------------------------------------------

class FloatGolden : public ::testing::TestWithParam<std::tuple<bool, bool, bool>> {};

TEST_P(FloatGolden, BlockedMatchesNaive) {
  const auto [trans_a, trans_b, accumulate] = GetParam();
  const GemmDesc desc{.trans_a = trans_a, .trans_b = trans_b, .accumulate = accumulate};
  for (int64_t m : kDims) {
    for (int64_t k : kDims) {
      for (int64_t n : kDims) {
        const auto a = random_floats(m * k, 11 * m + k);
        const auto b = random_floats(k * n, 13 * k + n);
        const auto c0 = random_floats(m * n, 17 * m + n);
        std::vector<float> c_naive = c0;
        std::vector<float> c_blocked = c0;
        kernels::gemm(desc, a.data(), b.data(), c_naive.data(), m, k, n,
                      Backend::kNaive);
        kernels::gemm(desc, a.data(), b.data(), c_blocked.data(), m, k, n,
                      Backend::kBlocked);
        SCOPED_TRACE(::testing::Message() << "m=" << m << " k=" << k << " n=" << n);
        expect_close(c_naive, c_blocked, k, "blocked vs naive");
      }
    }
  }
}

std::string variant_name(const ::testing::TestParamInfo<std::tuple<bool, bool, bool>>& info) {
  std::string s;
  s += std::get<0>(info.param) ? "TA" : "NA";
  s += std::get<1>(info.param) ? "TB" : "NB";
  s += std::get<2>(info.param) ? "Acc" : "Store";
  return s;
}

INSTANTIATE_TEST_SUITE_P(AllVariants, FloatGolden,
                         ::testing::Combine(::testing::Bool(), ::testing::Bool(),
                                            ::testing::Bool()),
                         variant_name);

TEST(Kernels, KZeroZeroesOrPreserves) {
  for (Backend backend : {Backend::kNaive, Backend::kBlocked}) {
    std::vector<float> c(6, 42.0f);
    kernels::gemm({}, nullptr, nullptr, c.data(), 2, 0, 3, backend);
    for (float v : c) EXPECT_EQ(v, 0.0f);
    std::vector<float> c2(6, 42.0f);
    kernels::gemm({.accumulate = true}, nullptr, nullptr, c2.data(), 2, 0, 3, backend);
    for (float v : c2) EXPECT_EQ(v, 42.0f);
  }
}

TEST(Kernels, EmptyOutputIsNoop) {
  kernels::gemm({}, nullptr, nullptr, nullptr, 0, 5, 3, Backend::kBlocked);
  kernels::gemm({}, nullptr, nullptr, nullptr, 3, 5, 0, Backend::kBlocked);
}

// ---------------------------------------------------------------------------
// Integer paths: approximate LUT, exact, adder-chained — bit-identical.
// ---------------------------------------------------------------------------

TEST(ApproxGolden, BlockedMatchesNaiveBitExact) {
  const approx::SignedMulTable tab(axmul::make_lut("trunc3"));
  for (int64_t m : kDims) {
    for (int64_t k : kDims) {
      for (int64_t n : kDims) {
        const auto w = random_i8(m * k, 3 * m + k, -7, 7);
        const auto x = random_i8(k * n, 5 * k + n, -127, 127);
        for (bool accumulate : {false, true}) {
          const GemmDesc desc{.accumulate = accumulate};
          std::vector<int32_t> c_naive(static_cast<size_t>(m * n), 9);
          std::vector<int32_t> c_blocked(static_cast<size_t>(m * n), 9);
          kernels::gemm_approx(desc, w.data(), x.data(), c_naive.data(), m, k, n, tab,
                               Backend::kNaive);
          kernels::gemm_approx(desc, w.data(), x.data(), c_blocked.data(), m, k, n,
                               tab, Backend::kBlocked);
          ASSERT_EQ(c_naive, c_blocked)
              << "m=" << m << " k=" << k << " n=" << n << " acc=" << accumulate;
        }
      }
    }
  }
}

TEST(ApproxGolden, ExactBlockedMatchesNaiveBitExact) {
  for (int64_t m : kDims) {
    for (int64_t k : kDims) {
      for (int64_t n : kDims) {
        const auto w = random_i8(m * k, 7 * m + k, -7, 7);
        const auto x = random_i8(k * n, 9 * k + n, -127, 127);
        std::vector<int32_t> c_naive(static_cast<size_t>(m * n));
        std::vector<int32_t> c_blocked(static_cast<size_t>(m * n));
        kernels::gemm_exact({}, w.data(), x.data(), c_naive.data(), m, k, n,
                            Backend::kNaive);
        kernels::gemm_exact({}, w.data(), x.data(), c_blocked.data(), m, k, n,
                            Backend::kBlocked);
        ASSERT_EQ(c_naive, c_blocked) << "m=" << m << " k=" << k << " n=" << n;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// ISA tiers: the vectorized blocked kernels must be bit-identical to the
// forced-scalar tier (the --no-simd / AXNN_SIMD=scalar escape hatch). Plans
// are keyed by ISA, so flipping it mid-process builds fresh plans for the
// scalar tier while the vector-tier plans stay cached and valid.
// ---------------------------------------------------------------------------

TEST(IsaGolden, ScalarTierMatchesVectorTierBitExact) {
  const kernels::Isa vector_isa = kernels::active_isa();
  if (vector_isa == kernels::Isa::kScalar)
    GTEST_SKIP() << "no vector ISA on this machine";
  const approx::SignedMulTable tab(axmul::make_lut("trunc3"));

  struct Restore {
    kernels::Isa isa;
    ~Restore() { kernels::set_isa(isa); }
  } restore{vector_isa};

  for (int64_t m : kDims) {
    for (int64_t k : kDims) {
      for (int64_t n : kDims) {
        const auto w = random_i8(m * k, 21 * m + k, -7, 7);
        const auto x = random_i8(k * n, 23 * k + n, -127, 127);
        const auto a = random_floats(m * k, 25 * m + k);
        const auto b = random_floats(k * n, 27 * k + n);
        std::vector<int32_t> approx_vec(static_cast<size_t>(m * n));
        std::vector<int32_t> exact_vec(static_cast<size_t>(m * n));
        std::vector<float> f32_vec(static_cast<size_t>(m * n));

        kernels::set_isa(vector_isa);
        kernels::gemm_approx({}, w.data(), x.data(), approx_vec.data(), m, k, n, tab,
                             Backend::kBlocked);
        kernels::gemm_exact({}, w.data(), x.data(), exact_vec.data(), m, k, n,
                            Backend::kBlocked);
        kernels::gemm({}, a.data(), b.data(), f32_vec.data(), m, k, n, Backend::kBlocked);

        kernels::set_isa(kernels::Isa::kScalar);
        std::vector<int32_t> approx_sc(static_cast<size_t>(m * n));
        std::vector<int32_t> exact_sc(static_cast<size_t>(m * n));
        std::vector<float> f32_sc(static_cast<size_t>(m * n));
        kernels::gemm_approx({}, w.data(), x.data(), approx_sc.data(), m, k, n, tab,
                             Backend::kBlocked);
        kernels::gemm_exact({}, w.data(), x.data(), exact_sc.data(), m, k, n,
                            Backend::kBlocked);
        kernels::gemm({}, a.data(), b.data(), f32_sc.data(), m, k, n, Backend::kBlocked);

        ASSERT_EQ(approx_vec, approx_sc) << "approx m=" << m << " k=" << k << " n=" << n;
        ASSERT_EQ(exact_vec, exact_sc) << "exact m=" << m << " k=" << k << " n=" << n;
        // Float is bit-stable across ISAs too: same operation order, no FMA.
        ASSERT_EQ(0, std::memcmp(f32_vec.data(), f32_sc.data(),
                                 f32_vec.size() * sizeof(float)))
            << "f32 m=" << m << " k=" << k << " n=" << n;
      }
    }
  }
}

TEST(ApproxGolden, AccumBackendsAgree) {
  const approx::SignedMulTable tab(axmul::make_lut("trunc3"));
  const axmul::LoaAdder adder(4);
  const int64_t m = 17, k = 64, n = 33;
  const auto w = random_i8(m * k, 21, -7, 7);
  const auto x = random_i8(k * n, 22, -127, 127);
  std::vector<int32_t> c_naive(static_cast<size_t>(m * n), 5);
  std::vector<int32_t> c_blocked(static_cast<size_t>(m * n), 5);
  kernels::gemm_approx_accum({.accumulate = true}, w.data(), x.data(), c_naive.data(),
                             m, k, n, tab, adder, Backend::kNaive);
  kernels::gemm_approx_accum({.accumulate = true}, w.data(), x.data(),
                             c_blocked.data(), m, k, n, tab, adder,
                             Backend::kBlocked);
  EXPECT_EQ(c_naive, c_blocked);
}

TEST(ApproxGolden, TransposeFlagsRejected) {
  const approx::SignedMulTable tab(axmul::make_lut("trunc3"));
  std::vector<int8_t> w(4), x(4);
  std::vector<int32_t> c(4);
  EXPECT_THROW(kernels::gemm_approx({.trans_a = true}, w.data(), x.data(), c.data(), 2,
                                    2, 2, tab, Backend::kBlocked),
               std::invalid_argument);
  EXPECT_THROW(kernels::gemm_exact({.trans_b = true}, w.data(), x.data(), c.data(), 2,
                                   2, 2, Backend::kNaive),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Determinism: bit-identical results across thread counts.
// ---------------------------------------------------------------------------

TEST(Determinism, FloatBitIdenticalAcrossThreadCounts) {
  const int64_t m = 129, k = 129, n = 65;
  const auto a = random_floats(m * k, 31);
  const auto b = random_floats(k * n, 32);
  for (Backend backend : {Backend::kNaive, Backend::kBlocked}) {
    for (bool trans_a : {false, true}) {
      for (bool trans_b : {false, true}) {
        const GemmDesc desc{.trans_a = trans_a, .trans_b = trans_b};
        ThreadPool p1(1);
        std::vector<float> ref(static_cast<size_t>(m * n));
        kernels::gemm(desc, a.data(), b.data(), ref.data(), m, k, n, backend, &p1);
        for (int threads : {2, 8}) {
          ThreadPool pn(threads);
          std::vector<float> got(static_cast<size_t>(m * n));
          kernels::gemm(desc, a.data(), b.data(), got.data(), m, k, n, backend, &pn);
          ASSERT_EQ(0, std::memcmp(ref.data(), got.data(),
                                   ref.size() * sizeof(float)))
              << kernels::backend_name(backend) << " ta=" << trans_a
              << " tb=" << trans_b << " threads=" << threads;
        }
      }
    }
  }
}

TEST(Determinism, ApproxBitIdenticalAcrossThreadCounts) {
  const approx::SignedMulTable tab(axmul::make_lut("trunc5"));
  const int64_t m = 65, k = 129, n = 33;
  const auto w = random_i8(m * k, 41, -7, 7);
  const auto x = random_i8(k * n, 42, -127, 127);
  for (Backend backend : {Backend::kNaive, Backend::kBlocked}) {
    ThreadPool p1(1);
    std::vector<int32_t> ref(static_cast<size_t>(m * n));
    kernels::gemm_approx({}, w.data(), x.data(), ref.data(), m, k, n, tab, backend,
                         &p1);
    for (int threads : {2, 8}) {
      ThreadPool pn(threads);
      std::vector<int32_t> got(static_cast<size_t>(m * n));
      kernels::gemm_approx({}, w.data(), x.data(), got.data(), m, k, n, tab, backend,
                           &pn);
      ASSERT_EQ(ref, got) << kernels::backend_name(backend)
                          << " threads=" << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Backend selection plumbing.
// ---------------------------------------------------------------------------

TEST(BackendConfig, NamesAndDefaultRoundTrip) {
  EXPECT_STREQ("naive", kernels::backend_name(Backend::kNaive));
  EXPECT_STREQ("blocked", kernels::backend_name(Backend::kBlocked));
  const Backend saved = kernels::default_backend();
  kernels::set_default_backend(Backend::kNaive);
  EXPECT_EQ(Backend::kNaive, kernels::default_backend());
  // A naive default forces auto_backend to naive regardless of shape.
  EXPECT_EQ(Backend::kNaive, kernels::auto_backend(512, 512, 512));
  kernels::set_default_backend(saved);
}

TEST(BackendConfig, AutoBackendCutsOverOnSmallProblems) {
  const Backend saved = kernels::default_backend();
  kernels::set_default_backend(Backend::kBlocked);
  EXPECT_EQ(Backend::kNaive, kernels::auto_backend(1, 576, 1024));  // depthwise row
  EXPECT_EQ(Backend::kNaive, kernels::auto_backend(64, 3, 4));      // tiny
  EXPECT_EQ(Backend::kBlocked, kernels::auto_backend(64, 576, 1024));
  kernels::set_default_backend(saved);
}

TEST(BackendConfig, RowGrainScalesInverselyWithWork) {
  EXPECT_GE(kernels::row_grain(1, 1), kernels::row_grain(576, 1024));
  EXPECT_GE(kernels::row_grain(0, 0), int64_t{1});
  EXPECT_EQ(kernels::row_grain(1 << 5, 1 << 5), int64_t{1} << 5);
}

TEST(ThreadPoolGlobal, SetThreadsFailsLoudAfterFirstUse) {
  ThreadPool& pool = ThreadPool::global();  // force creation
  const int current = pool.size();
  EXPECT_NO_THROW(ThreadPool::set_global_threads(current));  // same size: no-op
  EXPECT_THROW(ThreadPool::set_global_threads(current + 1), std::logic_error);
}

// ---------------------------------------------------------------------------
// Deprecated float free-function wrappers must keep compiling and agreeing.
// (The axnn::approx int wrappers are gone; matmul_approx is the only
// remaining convenience and routes through the same dispatch.)
// ---------------------------------------------------------------------------

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(DeprecatedWrappers, StillComputeTheSameResults) {
  const int64_t m = 17, k = 33, n = 9;
  const auto a = random_floats(m * k, 51);
  const auto b = random_floats(k * n, 52);
  std::vector<float> ref(static_cast<size_t>(m * n));
  std::vector<float> got(static_cast<size_t>(m * n));

  kernels::gemm({}, a.data(), b.data(), ref.data(), m, k, n);
  gemm_f32(a.data(), b.data(), got.data(), m, k, n);
  expect_close(ref, got, k, "gemm_f32");

  kernels::gemm({.accumulate = true}, a.data(), b.data(), ref.data(), m, k, n);
  gemm_f32_acc(a.data(), b.data(), got.data(), m, k, n);
  expect_close(ref, got, k, "gemm_f32_acc");

  const auto bt = random_floats(n * k, 53);  // B stored [N,K]
  kernels::gemm({.trans_b = true}, a.data(), bt.data(), ref.data(), m, k, n);
  gemm_nt_f32(a.data(), bt.data(), got.data(), m, k, n);
  expect_close(ref, got, k, "gemm_nt_f32");

  const auto at = random_floats(k * m, 54);  // A stored [K,M]
  kernels::gemm({.trans_a = true, .accumulate = true}, at.data(), b.data(), ref.data(),
                m, k, n);
  gemm_tn_f32_acc(at.data(), b.data(), got.data(), m, k, n);
  expect_close(ref, got, k, "gemm_tn_f32_acc");
}
#pragma GCC diagnostic pop

// The tensor-level convenience agrees with the raw int dispatch it wraps.
TEST(MatmulApprox, MatchesKernelDispatch) {
  const int64_t m = 17, k = 33, n = 9;
  const approx::SignedMulTable tab(axmul::make_lut("trunc3"));
  const auto w = random_i8(m * k, 55, -7, 7);
  const auto xi = random_i8(k * n, 56, -127, 127);

  TensorI8 wt(Shape{m, k}), xt(Shape{k, n});
  std::copy(w.begin(), w.end(), wt.data());
  std::copy(xi.begin(), xi.end(), xt.data());

  std::vector<int32_t> iref(static_cast<size_t>(m * n));
  kernels::gemm_approx({}, w.data(), xi.data(), iref.data(), m, k, n, tab);
  const TensorI32 igot = approx::matmul_approx(wt, xt, tab);
  for (int64_t i = 0; i < igot.numel(); ++i) EXPECT_EQ(iref[static_cast<size_t>(i)], igot[i]);
}

}  // namespace
