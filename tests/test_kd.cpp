// Tests for the knowledge-distillation losses (Eqs. 1-3).
#include <gtest/gtest.h>

#include <cmath>

#include "axnn/kd/distill.hpp"
#include "axnn/tensor/ops.hpp"

namespace axnn::kd {
namespace {

TEST(SoftCrossEntropy, ZeroWhenStudentEqualsTeacherGradientwise) {
  Rng rng(1);
  const Tensor t = randn(Shape{3, 5}, rng, 0.0f, 2.0f);
  const auto r = soft_cross_entropy(t, t, 4.0f);
  // Loss equals T^2 * entropy(teacher) > 0, but the gradient vanishes.
  EXPECT_GT(r.value, 0.0);
  for (int64_t i = 0; i < r.grad.numel(); ++i) EXPECT_NEAR(r.grad[i], 0.0f, 1e-6f);
}

TEST(SoftCrossEntropy, GradientPullsTowardTeacher) {
  Tensor student(Shape{1, 2}, 0.0f);
  Tensor teacher(Shape{1, 2}, 0.0f);
  teacher(0, 0) = 4.0f;  // teacher prefers class 0
  const auto r = soft_cross_entropy(student, teacher, 2.0f);
  EXPECT_LT(r.grad(0, 0), 0.0f);  // increase logit 0
  EXPECT_GT(r.grad(0, 1), 0.0f);  // decrease logit 1
}

TEST(SoftCrossEntropy, TSquaredScalingKeepsGradientMagnitude) {
  // Hinton scaling: the T^2 factor keeps soft-gradient magnitudes roughly
  // temperature-independent; without it they would shrink as 1/T^2.
  Rng rng(2);
  const Tensor teacher = randn(Shape{4, 6}, rng, 0.0f, 3.0f);
  const Tensor student = randn(Shape{4, 6}, rng, 0.0f, 3.0f);
  const auto g1 = soft_cross_entropy(student, teacher, 1.0f);
  const auto g10 = soft_cross_entropy(student, teacher, 10.0f);
  const double n1 = std::sqrt(ops::sum_sq(g1.grad));
  const double n10 = std::sqrt(ops::sum_sq(g10.grad));
  EXPECT_GT(n10, n1 * 0.05);
  EXPECT_LT(n10, n1 * 20.0);
}

TEST(SoftCrossEntropy, HigherTemperatureFlattensTargets) {
  // At high T the teacher distribution flattens, so a uniform student gets a
  // smaller gradient toward the argmax class.
  Tensor teacher(Shape{1, 3}, 0.0f);
  teacher(0, 2) = 6.0f;
  Tensor student(Shape{1, 3}, 0.0f);
  const auto low = soft_cross_entropy(student, teacher, 1.0f);
  const auto high = soft_cross_entropy(student, teacher, 10.0f);
  // Normalise out the T scaling of the gradient itself.
  const float pull_low = -low.grad(0, 2) / 1.0f;
  const float pull_high = -high.grad(0, 2) / 10.0f;
  EXPECT_LT(pull_high, pull_low);
}

TEST(SoftCrossEntropy, MatchesManualComputation) {
  // Hand-checked 2-class case at T = 2.
  Tensor s(Shape{1, 2}), t(Shape{1, 2});
  s(0, 0) = 1.0f; s(0, 1) = -1.0f;
  t(0, 0) = 2.0f; t(0, 1) = 0.0f;
  const float T = 2.0f;
  const auto r = soft_cross_entropy(s, t, T);
  const double pt0 = 1.0 / (1.0 + std::exp(-1.0));  // softmax(t/T)
  const double ps0 = 1.0 / (1.0 + std::exp(-1.0));  // softmax(s/T) (same gap)
  const double expect =
      -T * T * (pt0 * std::log(ps0) + (1.0 - pt0) * std::log(1.0 - ps0));
  EXPECT_NEAR(r.value, expect, 1e-5);
}

TEST(SoftCrossEntropy, InputValidation) {
  Tensor a(Shape{1, 2}, 0.0f), b(Shape{1, 3}, 0.0f);
  EXPECT_THROW(soft_cross_entropy(a, b, 1.0f), std::invalid_argument);
  EXPECT_THROW(soft_cross_entropy(a, a, 0.0f), std::invalid_argument);
}

TEST(DistillationLoss, IsHardPlusSoft) {
  Rng rng(3);
  const Tensor s = randn(Shape{2, 4}, rng);
  const Tensor t = randn(Shape{2, 4}, rng);
  const std::vector<int> labels = {1, 2};
  const auto combined = distillation_loss(s, t, labels, 3.0f);
  const auto hard = nn::cross_entropy(s, labels);
  const auto soft = soft_cross_entropy(s, t, 3.0f);
  EXPECT_NEAR(combined.value, hard.value + soft.value, 1e-9);
  for (int64_t i = 0; i < combined.grad.numel(); ++i)
    EXPECT_NEAR(combined.grad[i], hard.grad[i] + soft.grad[i], 1e-6f);
}

TEST(DistillationLoss, PerfectStudentHasSmallGradient) {
  // A student matching both labels and teacher confidently -> tiny gradient.
  Tensor s(Shape{1, 3}, 0.0f);
  s(0, 0) = 10.0f;
  const auto r = distillation_loss(s, s, {0}, 2.0f);
  EXPECT_LT(std::sqrt(ops::sum_sq(r.grad)), 1e-3);
}

}  // namespace
}  // namespace axnn::kd
