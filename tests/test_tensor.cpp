// Tests for the tensor substrate: Shape, Rng, Tensor, ops, GEMM, ThreadPool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>

#include "axnn/tensor/gemm.hpp"
#include "axnn/tensor/kernels.hpp"
#include "axnn/tensor/ops.hpp"
#include "axnn/tensor/rng.hpp"
#include "axnn/tensor/shape.hpp"
#include "axnn/tensor/tensor.hpp"
#include "axnn/tensor/threadpool.hpp"

namespace axnn {
namespace {

TEST(Shape, BasicProperties) {
  Shape s{2, 3, 4};
  EXPECT_EQ(s.rank(), 3);
  EXPECT_EQ(s.numel(), 24);
  EXPECT_EQ(s[0], 2);
  EXPECT_EQ(s[2], 4);
  EXPECT_EQ(s.dim(-1), 4);
  EXPECT_EQ(s.to_string(), "[2, 3, 4]");
}

TEST(Shape, ScalarHasOneElement) {
  Shape s;
  EXPECT_EQ(s.rank(), 0);
  EXPECT_EQ(s.numel(), 1);
}

TEST(Shape, Equality) {
  EXPECT_EQ((Shape{2, 3}), (Shape{2, 3}));
  EXPECT_NE((Shape{2, 3}), (Shape{3, 2}));
  EXPECT_NE((Shape{2, 3}), (Shape{2, 3, 1}));
}

TEST(Shape, RejectsNegativeDims) {
  EXPECT_THROW((Shape{2, -1}), std::invalid_argument);
}

TEST(Shape, RejectsExcessRank) {
  EXPECT_THROW((Shape{1, 1, 1, 1, 1, 1, 1}), std::invalid_argument);
}

TEST(Shape, OutOfRangeAxisThrows) {
  Shape s{2, 3};
  EXPECT_THROW(s[2], std::out_of_range);
  EXPECT_THROW(s[-1], std::out_of_range);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<size_t>(rng.uniform_int(10))];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 - n / 50);
    EXPECT_LT(c, n / 10 + n / 50);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int64_t> v(100);
  std::iota(v.begin(), v.end(), 0);
  rng.shuffle(v);
  std::set<int64_t> s(v.begin(), v.end());
  EXPECT_EQ(s.size(), 100u);
  EXPECT_NE(v[0] * 100 + v[1], 0 * 100 + 1);  // overwhelmingly likely moved
}

TEST(Rng, HashMixDeterministicAndSpread) {
  EXPECT_EQ(hash_mix(1, 2), hash_mix(1, 2));
  EXPECT_NE(hash_mix(1, 2), hash_mix(2, 1));
  EXPECT_NE(hash_mix(0, 0), 0u);
}

TEST(Tensor, FillAndAccess) {
  Tensor t(Shape{2, 3}, 1.5f);
  EXPECT_EQ(t.numel(), 6);
  EXPECT_FLOAT_EQ(t(1, 2), 1.5f);
  t(0, 1) = 2.0f;
  EXPECT_FLOAT_EQ(t[1], 2.0f);
}

TEST(Tensor, AtBoundsChecked) {
  Tensor t(Shape{4});
  EXPECT_THROW(t.at(4), std::out_of_range);
  EXPECT_THROW(t.at(-1), std::out_of_range);
  EXPECT_NO_THROW(t.at(3));
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t(Shape{2, 3});
  for (int64_t i = 0; i < 6; ++i) t[i] = static_cast<float>(i);
  const Tensor r = t.reshaped(Shape{3, 2});
  EXPECT_EQ(r.shape(), (Shape{3, 2}));
  for (int64_t i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(r[i], static_cast<float>(i));
  EXPECT_THROW(t.reshaped(Shape{4, 2}), std::invalid_argument);
}

TEST(Tensor, DataSizeMismatchThrows) {
  EXPECT_THROW(Tensor(Shape{2, 2}, std::vector<float>{1.0f}), std::invalid_argument);
}

TEST(Tensor, RandnStatistics) {
  Rng rng(5);
  const Tensor t = randn(Shape{4, 1000}, rng, 1.0f, 2.0f);
  EXPECT_NEAR(ops::mean(t), 1.0, 0.1);
}

TEST(Ops, AddSubMul) {
  Tensor a(Shape{3}, 2.0f), b(Shape{3}, 3.0f);
  EXPECT_FLOAT_EQ(ops::add(a, b)[0], 5.0f);
  EXPECT_FLOAT_EQ(ops::sub(a, b)[0], -1.0f);
  EXPECT_FLOAT_EQ(ops::mul(a, b)[0], 6.0f);
  EXPECT_THROW(ops::add(a, Tensor(Shape{4})), std::invalid_argument);
}

TEST(Ops, InplaceOps) {
  Tensor a(Shape{2}, 1.0f), b(Shape{2}, 2.0f);
  ops::add_inplace(a, b);
  EXPECT_FLOAT_EQ(a[0], 3.0f);
  ops::axpy_inplace(a, 0.5f, b);
  EXPECT_FLOAT_EQ(a[0], 4.0f);
  ops::scale_inplace(a, 2.0f);
  EXPECT_FLOAT_EQ(a[0], 8.0f);
}

TEST(Ops, Reductions) {
  Tensor a(Shape{4});
  a[0] = 1.0f; a[1] = -2.0f; a[2] = 3.0f; a[3] = -4.0f;
  EXPECT_DOUBLE_EQ(ops::sum(a), -2.0);
  EXPECT_DOUBLE_EQ(ops::mean(a), -0.5);
  EXPECT_FLOAT_EQ(ops::max_abs(a), 4.0f);
  EXPECT_DOUBLE_EQ(ops::sum_sq(a), 30.0);
}

TEST(Ops, Mse) {
  Tensor a(Shape{2}, 1.0f), b(Shape{2}, 3.0f);
  EXPECT_DOUBLE_EQ(ops::mse(a, b), 4.0);
}

TEST(Ops, SoftmaxRowsSumToOne) {
  Rng rng(3);
  const Tensor logits = randn(Shape{5, 10}, rng, 0.0f, 3.0f);
  const Tensor p = ops::softmax(logits);
  for (int64_t i = 0; i < 5; ++i) {
    double s = 0.0;
    for (int64_t j = 0; j < 10; ++j) {
      EXPECT_GT(p(i, j), 0.0f);
      s += p(i, j);
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Ops, SoftmaxTemperatureFlattens) {
  Tensor logits(Shape{1, 3});
  logits[0] = 0.0f; logits[1] = 2.0f; logits[2] = 4.0f;
  const Tensor p1 = ops::softmax(logits, 1.0f);
  const Tensor p10 = ops::softmax(logits, 10.0f);
  // High temperature -> flatter distribution (paper's KD mechanism).
  EXPECT_LT(p10[2] - p10[0], p1[2] - p1[0]);
  EXPECT_GT(p10[0], p1[0]);
}

TEST(Ops, LogSoftmaxMatchesLogOfSoftmax) {
  Rng rng(9);
  const Tensor logits = randn(Shape{3, 7}, rng);
  const Tensor lp = ops::log_softmax(logits, 2.0f);
  const Tensor p = ops::softmax(logits, 2.0f);
  for (int64_t i = 0; i < lp.numel(); ++i) EXPECT_NEAR(lp[i], std::log(p[i]), 1e-5);
}

TEST(Ops, SoftmaxInvariantToShift) {
  Tensor logits(Shape{1, 3});
  logits[0] = 1000.0f; logits[1] = 1001.0f; logits[2] = 1002.0f;  // stability
  const Tensor p = ops::softmax(logits);
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-5);
  EXPECT_GT(p[2], p[1]);
}

TEST(Ops, ArgmaxAndAccuracy) {
  Tensor logits(Shape{2, 3}, 0.0f);
  logits(0, 1) = 1.0f;
  logits(1, 2) = 1.0f;
  const auto am = ops::argmax_rows(logits);
  EXPECT_EQ(am[0], 1);
  EXPECT_EQ(am[1], 2);
  EXPECT_DOUBLE_EQ(ops::accuracy(logits, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(ops::accuracy(logits, {1, 0}), 0.5);
}

TEST(Ops, RejectsBadTemperature) {
  Tensor logits(Shape{1, 2}, 0.0f);
  EXPECT_THROW(ops::softmax(logits, 0.0f), std::invalid_argument);
  EXPECT_THROW(ops::log_softmax(logits, -1.0f), std::invalid_argument);
}

Tensor naive_matmul(const Tensor& a, const Tensor& b) {
  const int64_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  Tensor c(Shape{m, n}, 0.0f);
  for (int64_t i = 0; i < m; ++i)
    for (int64_t kk = 0; kk < k; ++kk)
      for (int64_t j = 0; j < n; ++j) c(i, j) += a(i, kk) * b(kk, j);
  return c;
}

struct GemmDims {
  int64_t m, k, n;
};

class GemmSweep : public ::testing::TestWithParam<GemmDims> {};

TEST_P(GemmSweep, MatchesNaiveReference) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 10007 + k * 101 + n);
  const Tensor a = randn(Shape{m, k}, rng);
  const Tensor b = randn(Shape{k, n}, rng);
  const Tensor c = matmul(a, b);
  const Tensor ref = naive_matmul(a, b);
  for (int64_t i = 0; i < c.numel(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-3f);
}

TEST_P(GemmSweep, TransposedVariantsConsistent) {
  const auto [m, k, n] = GetParam();
  Rng rng(m + k + n);
  const Tensor a = randn(Shape{m, k}, rng);
  const Tensor b = randn(Shape{k, n}, rng);
  const Tensor ref = naive_matmul(a, b);

  // gemm_nt: A[M,K] * (Bt[N,K])^T
  const Tensor bt = transpose(b);
  Tensor c1(Shape{m, n});
  kernels::gemm({.trans_b = true}, a.data(), bt.data(), c1.data(), m, k, n);
  for (int64_t i = 0; i < ref.numel(); ++i) EXPECT_NEAR(c1[i], ref[i], 1e-3f);

  // gemm_tn: (At[K,M])^T * B[K,N], accumulating into zeros
  const Tensor at = transpose(a);
  Tensor c2(Shape{m, n}, 0.0f);
  kernels::gemm({.trans_a = true, .accumulate = true}, at.data(), b.data(), c2.data(),
                m, k, n);
  for (int64_t i = 0; i < ref.numel(); ++i) EXPECT_NEAR(c2[i], ref[i], 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GemmSweep,
                         ::testing::Values(GemmDims{1, 1, 1}, GemmDims{2, 3, 4},
                                           GemmDims{5, 17, 3}, GemmDims{16, 16, 16},
                                           GemmDims{33, 7, 29}, GemmDims{64, 128, 9},
                                           GemmDims{128, 27, 256}));

TEST(Gemm, MatmulShapeChecks) {
  Tensor a(Shape{2, 3}), b(Shape{4, 2});
  EXPECT_THROW(matmul(a, b), std::invalid_argument);
}

TEST(Gemm, TransposeRoundTrip) {
  Rng rng(21);
  const Tensor a = randn(Shape{5, 7}, rng);
  const Tensor att = transpose(transpose(a));
  for (int64_t i = 0; i < a.numel(); ++i) EXPECT_FLOAT_EQ(att[i], a[i]);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, HandlesEmptyAndSmallRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(0, [&](int64_t, int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> total{0};
  pool.parallel_for(3, [&](int64_t b, int64_t e) { total += static_cast<int>(e - b); });
  EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPool, ManyInvocationsStable) {
  ThreadPool pool(2);
  for (int iter = 0; iter < 100; ++iter) {
    std::atomic<int64_t> sum{0};
    pool.parallel_for(257, [&](int64_t b, int64_t e) {
      int64_t local = 0;
      for (int64_t i = b; i < e; ++i) local += i;
      sum += local;
    });
    EXPECT_EQ(sum.load(), 257 * 256 / 2);
  }
}

TEST(ThreadPool, WorkerExceptionRethrownOnSubmittingThread) {
  ThreadPool pool(4);
  // Every chunk throws; exactly one exception (the first) must surface, as a
  // normal catchable exception on the calling thread.
  EXPECT_THROW(pool.parallel_for(1000,
                                 [](int64_t b, int64_t) {
                                   throw std::out_of_range("chunk " + std::to_string(b));
                                 }),
               std::out_of_range);

  // Non-throwing chunks of a partially-failing invocation still run.
  std::vector<std::atomic<int>> hits(1000);
  try {
    pool.parallel_for(1000, [&](int64_t b, int64_t e) {
      if (b == 0) throw std::runtime_error("first chunk fails");
      for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
    });
    FAIL() << "expected the chunk exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first chunk fails");
  }
  int covered = 0;
  for (auto& h : hits) covered += h.load();
  EXPECT_GT(covered, 0);

  // The pool survives throwing tasks and keeps working.
  std::atomic<int64_t> sum{0};
  pool.parallel_for(257, [&](int64_t b, int64_t e) { sum += e - b; });
  EXPECT_EQ(sum.load(), 257);
}

TEST(ThreadPool, InlinePathPropagatesExceptions) {
  ThreadPool pool(1);  // single worker: parallel_for runs inline
  EXPECT_THROW(pool.parallel_for(10, [](int64_t, int64_t) { throw std::logic_error("inline"); }),
               std::logic_error);
  std::atomic<int64_t> sum{0};
  pool.parallel_for(10, [&](int64_t b, int64_t e) { sum += e - b; });
  EXPECT_EQ(sum.load(), 10);
}

TEST(ThreadPool, CurrentIsNullOutsideWorkersAndSetInside) {
  EXPECT_EQ(ThreadPool::current(), nullptr);
  ThreadPool pool(2);
  std::atomic<int> inside{0};
  pool.parallel_for(
      8, [&](int64_t b, int64_t e) {
        // The chunk run by the submitting thread sees nullptr; worker chunks
        // see the owning pool.
        ThreadPool* cur = ThreadPool::current();
        if (cur == &pool) inside += static_cast<int>(e - b);
        else EXPECT_EQ(cur, nullptr);
        (void)b;
      },
      1);
  EXPECT_EQ(ThreadPool::current(), nullptr);  // unchanged on the caller
  (void)inside;  // how many chunks land on workers is scheduling-dependent
}

TEST(ThreadPool, NestedSamePoolParallelForRunsInline) {
  // Regression for the serving engine's nested use: a worker of a pool that
  // re-enters parallel_for on the SAME pool must run inline — enqueueing
  // would deadlock once every worker blocks waiting for chunks only the
  // blocked workers could execute, and oversubscribes before that.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  std::atomic<int> cross_thread_nested{0};
  pool.parallel_for(
      8, [&](int64_t ob, int64_t oe) {
        for (int64_t o = ob; o < oe; ++o) {
          const std::thread::id outer = std::this_thread::get_id();
          pool.parallel_for(
              8, [&](int64_t ib, int64_t ie) {
                if (std::this_thread::get_id() != outer) cross_thread_nested++;
                for (int64_t i = ib; i < ie; ++i) hits[static_cast<size_t>(o * 8 + i)]++;
              },
              1);
        }
      },
      1);
  // Nested chunks submitted from pool workers never leave their thread. The
  // submitting thread's own chunk is not a pool worker, so its nested call
  // may legitimately fan out — every element is still covered exactly once.
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NestedCrossPoolParallelForCompletes) {
  // The supported inter-op/intra-op split: workers of one pool drive
  // parallel_for on a different pool.
  ThreadPool inter(2), intra(2);
  std::vector<std::atomic<int>> hits(128);
  inter.parallel_for(
      4, [&](int64_t ob, int64_t oe) {
        for (int64_t o = ob; o < oe; ++o)
          intra.parallel_for(
              32, [&](int64_t ib, int64_t ie) {
                for (int64_t i = ib; i < ie; ++i) hits[static_cast<size_t>(o * 32 + i)]++;
              },
              1);
      },
      1);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, PlanSplitPartitionsHardware) {
  // inter * intra never exceeds the planned-against hardware width.
  for (int hw = 1; hw <= 16; ++hw) {
    for (int hint = -2; hint <= 2 * hw; ++hint) {
      const auto s = ThreadPool::plan_split(hint, hw);
      EXPECT_GE(s.inter, 1);
      EXPECT_GE(s.intra, 1);
      EXPECT_LE(s.inter, hw);
      EXPECT_LE(s.inter * s.intra, std::max(hw, s.inter));
    }
  }
  EXPECT_EQ(ThreadPool::plan_split(1, 8).intra, 8);
  EXPECT_EQ(ThreadPool::plan_split(2, 8).intra, 4);
  EXPECT_EQ(ThreadPool::plan_split(3, 8).intra, 2);
  EXPECT_EQ(ThreadPool::plan_split(99, 8).inter, 8);
  EXPECT_EQ(ThreadPool::plan_split(99, 8).intra, 1);
  // hw = 0 resolves to the machine's hardware concurrency.
  const auto def = ThreadPool::plan_split(1, 0);
  EXPECT_GE(def.intra, 1);
}

TEST(ThreadPool, PlanSplitDegenerateInputs) {
  // One hardware thread: every hint collapses to the serial split — the
  // serving engine on a single-core box runs one lane, no intra fan-out.
  for (const int hint : {-3, 0, 1, 2, 64}) {
    const auto s = ThreadPool::plan_split(hint, 1);
    EXPECT_EQ(s.inter, 1) << "hint " << hint;
    EXPECT_EQ(s.intra, 1) << "hint " << hint;
  }
  // More requested lanes than threads: inter clamps to the hardware width
  // and each lane keeps exactly one kernel thread — never zero, never
  // oversubscribed.
  for (const int hw : {2, 3, 5}) {
    const auto s = ThreadPool::plan_split(hw + 7, hw);
    EXPECT_EQ(s.inter, hw);
    EXPECT_EQ(s.intra, 1);
    EXPECT_LE(s.inter * s.intra, hw);
  }
  // Nonsense hints clamp up to one coarse task with full intra width.
  EXPECT_EQ(ThreadPool::plan_split(0, 6).inter, 1);
  EXPECT_EQ(ThreadPool::plan_split(0, 6).intra, 6);
  EXPECT_EQ(ThreadPool::plan_split(-9, 4).inter, 1);
  EXPECT_EQ(ThreadPool::plan_split(-9, 4).intra, 4);
}

// ---------------------------------------------------------------------------
// Buffer pool: tensor storage recycles through size-class freelists.
// ---------------------------------------------------------------------------

TEST(BufferPool, RecyclesBlocksAcrossTensorLifetimes) {
  const Shape shape{4, 16, 8, 8};
  const float* first_block = nullptr;
  {
    Tensor warm(shape, 1.0f);
    first_block = warm.data();
  }  // block parks on its freelist
  buffer_pool_reset_stats();
  Tensor again(shape, 2.0f);
  // Same size class, nothing else competing: the freelist hands the block
  // straight back without touching the heap.
  EXPECT_EQ(again.data(), first_block);
  const BufferPoolStats s = buffer_pool_stats();
  EXPECT_GE(s.hits, 1);
  EXPECT_EQ(s.misses, 0);
  EXPECT_GT(s.hit_rate(), 0.99);
}

TEST(BufferPool, SteadyStateTensorChurnIsAllHits) {
  // Warm one block per class used, then churn: every construct/destruct
  // cycle after warm-up must be freelist-only.
  for (int round = 0; round < 2; ++round) {
    Tensor a(Shape{3, 5, 7, 9});
    TensorI8 b(Shape{129});
    TensorI32 c(Shape{64, 64});
    if (round == 0) buffer_pool_reset_stats();
  }
  const BufferPoolStats s = buffer_pool_stats();
  EXPECT_EQ(s.misses, 0);
  EXPECT_GE(s.hits, 3);
  EXPECT_GE(s.returned, 6);  // both rounds' blocks went back to the lists
}

TEST(BufferPool, TrimReleasesParkedBytes) {
  { Tensor t(Shape{1024}); }
  EXPECT_GT(buffer_pool_stats().cached_bytes, 0);
  buffer_pool_trim();
  EXPECT_EQ(buffer_pool_stats().cached_bytes, 0);
  // The pool stays usable after a trim.
  Tensor t(Shape{1024}, 3.0f);
  EXPECT_EQ(t[0], 3.0f);
}

TEST(BufferPool, StatsReportCapacity) {
  const BufferPoolStats s = buffer_pool_stats();
  EXPECT_GT(s.cap_bytes, 0);  // default cap is 256 MiB unless overridden
}

}  // namespace
}  // namespace axnn
