// Tests for the approximate-multiplier library: behavioural models, LUTs,
// Eq.-14 statistics and the registry.
#include <gtest/gtest.h>

#include <cmath>

#include "axnn/axmul/evoapprox_like.hpp"
#include "axnn/axmul/multiplier.hpp"
#include "axnn/axmul/registry.hpp"
#include "axnn/axmul/stats.hpp"
#include "axnn/axmul/truncated.hpp"

namespace axnn::axmul {
namespace {

TEST(ExactMultiplier, MatchesIntegerProduct) {
  ExactMultiplier m;
  for (int a = 0; a < kActValues; a += 7)
    for (int w = 0; w < kWgtValues; ++w)
      EXPECT_EQ(m.multiply(static_cast<uint8_t>(a), static_cast<uint8_t>(w)), a * w);
}

TEST(TruncatedMultiplier, ZeroTruncationIsExact) {
  TruncatedMultiplier m(0);
  for (int a = 0; a < kActValues; ++a)
    for (int w = 0; w < kWgtValues; ++w)
      EXPECT_EQ(m.multiply(static_cast<uint8_t>(a), static_cast<uint8_t>(w)), a * w);
}

TEST(TruncatedMultiplier, NeverOverestimates) {
  // Dropping partial products can only reduce the sum.
  for (int t = 1; t <= 6; ++t) {
    TruncatedMultiplier m(t);
    for (int a = 0; a < kActValues; ++a)
      for (int w = 0; w < kWgtValues; ++w) {
        const int32_t p = m.multiply(static_cast<uint8_t>(a), static_cast<uint8_t>(w));
        EXPECT_LE(p, a * w);
        EXPECT_GE(p, 0);
      }
  }
}

TEST(TruncatedMultiplier, MonotoneDamageInTruncationDepth) {
  double prev_mre = -1.0;
  for (int t = 0; t <= 8; ++t) {
    const auto stats = compute_error_stats(TruncatedMultiplier(t));
    EXPECT_GE(stats.mre, prev_mre);
    prev_mre = stats.mre;
  }
}

TEST(TruncatedMultiplier, KnownValueHandChecked) {
  // a = 0b1111 (15), w = 0b11 (3), t = 2: partial products at (i,j) with
  // a_i=1 (i<4), w_j=1 (j<2); keep i+j>=2:
  // kept: (1,1)=4 (2,0)=4 (2,1)=8 (3,0)=8 (3,1)=16 -> 40 (exact 45).
  TruncatedMultiplier m(2);
  EXPECT_EQ(m.multiply(15, 3), 40);
}

TEST(TruncatedMultiplier, RejectsBadDepth) {
  EXPECT_THROW(TruncatedMultiplier(-1), std::invalid_argument);
  EXPECT_THROW(TruncatedMultiplier(12), std::invalid_argument);
}

TEST(TruncatedMultiplier, MreRegressionValues) {
  // Eq.-14 MRE of the faithful column-truncation model over the 8x4 domain.
  // Note these are lower than the paper's published 5.5/11.0/19.8% — the
  // paper's numbers come from its own 8x8 -> 8x4 adaptation; what the
  // reproduction preserves is the monotone severity ordering and the biased
  // error structure (see DESIGN.md §2). These values pin our model against
  // regressions.
  EXPECT_NEAR(compute_error_stats(TruncatedMultiplier(3)).mre, 0.0193, 0.002);
  EXPECT_NEAR(compute_error_stats(TruncatedMultiplier(4)).mre, 0.0448, 0.004);
  EXPECT_NEAR(compute_error_stats(TruncatedMultiplier(5)).mre, 0.0874, 0.008);
}

TEST(TruncatedMultiplier, ErrorIsBiased) {
  const auto stats = compute_error_stats(TruncatedMultiplier(5));
  EXPECT_LT(stats.mean_error, -1.0);  // systematic under-estimation
}

TEST(EvoApproxLike, Deterministic) {
  EvoApproxLikeMultiplier a(228, 0.189), b(228, 0.189);
  for (int i = 0; i < kActValues; i += 3)
    for (int w = 0; w < kWgtValues; ++w)
      EXPECT_EQ(a.multiply(static_cast<uint8_t>(i), static_cast<uint8_t>(w)),
                b.multiply(static_cast<uint8_t>(i), static_cast<uint8_t>(w)));
}

TEST(EvoApproxLike, VariantsDiffer) {
  EvoApproxLikeMultiplier a(228, 0.189), b(469, 0.189);
  int diff = 0;
  for (int i = 0; i < kActValues; ++i)
    for (int w = 1; w < kWgtValues; ++w)
      diff += a.multiply(static_cast<uint8_t>(i), static_cast<uint8_t>(w)) !=
              b.multiply(static_cast<uint8_t>(i), static_cast<uint8_t>(w));
  EXPECT_GT(diff, 1000);
}

TEST(EvoApproxLike, ZeroTargetIsExact) {
  EvoApproxLikeMultiplier m(1, 0.0);
  for (int a = 0; a < kActValues; a += 5)
    for (int w = 0; w < kWgtValues; ++w)
      EXPECT_EQ(m.multiply(static_cast<uint8_t>(a), static_cast<uint8_t>(w)), a * w);
}

TEST(EvoApproxLike, RejectsBadTarget) {
  EXPECT_THROW(EvoApproxLikeMultiplier(1, -0.1), std::invalid_argument);
  EXPECT_THROW(EvoApproxLikeMultiplier(1, 1.0), std::invalid_argument);
}

TEST(EvoApproxLike, ProductsStayInRange) {
  EvoApproxLikeMultiplier m(249, 0.488);
  for (int a = 0; a < kActValues; ++a)
    for (int w = 0; w < kWgtValues; ++w) {
      const int32_t p = m.multiply(static_cast<uint8_t>(a), static_cast<uint8_t>(w));
      EXPECT_GE(p, 0);
      EXPECT_LE(p, 255 * 15);
    }
}

class EvoApproxCalibration : public ::testing::TestWithParam<double> {};

TEST_P(EvoApproxCalibration, MreMatchesTarget) {
  const double target = GetParam();
  EvoApproxLikeMultiplier m(7, target);
  const auto stats = compute_error_stats(m);
  // Bisection calibrates Eq.-14 MRE to the published value.
  EXPECT_NEAR(stats.mre, target, 0.1 * target + 0.002);
}

INSTANTIATE_TEST_SUITE_P(Targets, EvoApproxCalibration,
                         ::testing::Values(0.021, 0.079, 0.116, 0.189, 0.205, 0.488));

TEST(EvoApproxLike, ErrorIsApproximatelyUnbiased) {
  // The property that collapses GE to STE for this family (paper Fig. 3).
  EvoApproxLikeMultiplier m(228, 0.189);
  const auto stats = compute_error_stats(m);
  EXPECT_LT(std::abs(stats.mean_error), 0.15 * stats.rms_error);
}

TEST(MultiplierLut, MatchesModel) {
  TruncatedMultiplier m(4);
  MultiplierLut lut(m);
  EXPECT_EQ(lut.name(), "trunc4");
  for (int a = 0; a < kActValues; a += 11)
    for (int w = 0; w < kWgtValues; ++w)
      EXPECT_EQ(lut(static_cast<uint8_t>(a), static_cast<uint8_t>(w)),
                m.multiply(static_cast<uint8_t>(a), static_cast<uint8_t>(w)));
}

TEST(MultiplierLut, SignedMulWrapsSignMagnitude) {
  MultiplierLut lut;  // exact
  EXPECT_EQ(lut.signed_mul(-5, 3), -15);
  EXPECT_EQ(lut.signed_mul(5, -3), -15);
  EXPECT_EQ(lut.signed_mul(-5, -3), 15);
  EXPECT_EQ(lut.signed_mul(0, -3), 0);
  EXPECT_EQ(lut.signed_mul(127, 7), 889);
}

TEST(Stats, ExactMultiplierHasZeroError) {
  const auto stats = compute_error_stats(ExactMultiplier{});
  EXPECT_DOUBLE_EQ(stats.mre, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_error, 0.0);
  EXPECT_DOUBLE_EQ(stats.max_abs_error, 0.0);
  EXPECT_DOUBLE_EQ(stats.zero_error_fraction, 1.0);
}

TEST(Stats, LutAndModelStatsAgree) {
  TruncatedMultiplier m(5);
  const auto s1 = compute_error_stats(m);
  const auto s2 = compute_error_stats(MultiplierLut(m));
  EXPECT_DOUBLE_EQ(s1.mre, s2.mre);
  EXPECT_DOUBLE_EQ(s1.rms_error, s2.rms_error);
}

TEST(Stats, ErrorProfileShowsTruncationBias) {
  // Every populated bin of a truncated multiplier has non-positive mean
  // error, and high-product bins are more damaged in absolute terms.
  const auto profile = error_profile(MultiplierLut(TruncatedMultiplier(5)), 16);
  ASSERT_EQ(profile.size(), 16u);
  for (const auto& bin : profile) {
    if (bin.count > 0) {
      EXPECT_LE(bin.mean_eps, 1e-9);
    }
  }
}

TEST(Stats, ErrorProfileCountsCoverDomain) {
  const auto profile = error_profile(MultiplierLut(TruncatedMultiplier(2)), 8);
  int64_t total = 0;
  for (const auto& bin : profile) total += bin.count;
  EXPECT_EQ(total, kLutSize);
}

TEST(Registry, PaperMultipliersPresent) {
  const auto& specs = paper_multipliers();
  EXPECT_EQ(specs.size(), 14u);  // exact + 5 truncated + 8 EvoApprox-like
  EXPECT_TRUE(find_spec("exact").has_value());
  EXPECT_TRUE(find_spec("trunc5").has_value());
  EXPECT_TRUE(find_spec("evoa249").has_value());
  EXPECT_FALSE(find_spec("bogus").has_value());
}

TEST(Registry, SavingsMatchPaperTable) {
  EXPECT_DOUBLE_EQ(find_spec("trunc5")->energy_savings_pct, 38.0);
  EXPECT_DOUBLE_EQ(find_spec("trunc4")->energy_savings_pct, 28.0);
  EXPECT_DOUBLE_EQ(find_spec("evoa249")->energy_savings_pct, 61.0);
  EXPECT_DOUBLE_EQ(find_spec("evoa228")->energy_savings_pct, 19.0);
}

TEST(Registry, MakeMultiplierProducesCalibratedModels) {
  for (const auto& spec : paper_multipliers()) {
    const auto m = make_multiplier(spec);
    ASSERT_NE(m, nullptr);
    const auto stats = compute_error_stats(*m);
    if (spec.kind == MultiplierKind::kEvoApproxLike) {
      // EvoApprox-like surfaces are explicitly calibrated to the published
      // MRE; truncated models are faithful structural models whose Eq.-14
      // value differs from the paper's (see MreRegressionValues above).
      EXPECT_NEAR(stats.mre, spec.paper_mre, 0.25 * spec.paper_mre + 0.01)
          << "multiplier " << spec.id;
    } else if (spec.kind == MultiplierKind::kTruncated) {
      EXPECT_GT(stats.mre, 0.0) << "multiplier " << spec.id;
      EXPECT_LT(stats.mre, spec.paper_mre + 0.05) << "multiplier " << spec.id;
    }
  }
}

TEST(Registry, ExtensionTruncatedSynthesised) {
  const auto spec = find_spec("trunc7");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->param, 7);
  EXPECT_NO_THROW(make_lut("trunc7"));
}

TEST(Registry, UnknownIdThrows) {
  EXPECT_THROW(make_multiplier("nope"), std::invalid_argument);
  EXPECT_THROW(make_lut("trunc99"), std::invalid_argument);
}

}  // namespace
}  // namespace axnn::axmul
