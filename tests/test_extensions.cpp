// Tests for the paper-outlook extensions: configurable quantization
// bit-widths and per-layer plan overrides (non-uniform approximation).
#include <gtest/gtest.h>

#include "axnn/approx/signed_lut.hpp"
#include "axnn/axmul/registry.hpp"
#include "axnn/nn/activations.hpp"
#include "axnn/nn/conv2d.hpp"
#include "axnn/nn/linear.hpp"
#include "axnn/nn/plan.hpp"
#include "axnn/nn/sequential.hpp"
#include "axnn/quant/calibration.hpp"
#include "axnn/tensor/ops.hpp"

namespace axnn::nn {
namespace {

Conv2d make_calibrated_conv(Rng& rng, const Tensor& x, int wbits = 4, int abits = 8) {
  Conv2d conv({x.shape()[1], 4, 3, 1, 1, 1, true}, rng);
  conv.set_bit_widths(wbits, abits);
  (void)conv.forward(x, ExecContext::calibrate());
  conv.finalize_calibration(quant::Calibration::kMinPropQE);
  return conv;
}

TEST(BitWidths, DefaultsAre8A4W) {
  Rng rng(1);
  Conv2d conv({2, 2, 3, 1, 1, 1, true}, rng);
  EXPECT_EQ(conv.weight_bits(), 4);
  EXPECT_EQ(conv.activation_bits(), 8);
  Linear lin(4, 2, rng);
  EXPECT_EQ(lin.weight_bits(), 4);
  EXPECT_EQ(lin.activation_bits(), 8);
}

TEST(BitWidths, Validation) {
  Rng rng(2);
  Conv2d conv({2, 2, 3, 1, 1, 1, true}, rng);
  EXPECT_THROW(conv.set_bit_widths(1, 8), std::invalid_argument);
  EXPECT_THROW(conv.set_bit_widths(4, 9), std::invalid_argument);
  Linear lin(4, 2, rng);
  EXPECT_THROW(lin.set_bit_widths(0, 8), std::invalid_argument);
}

TEST(BitWidths, SettingInvalidatesCalibration) {
  Rng rng(3);
  const Tensor x = randn(Shape{2, 3, 6, 6}, rng, 0.0f, 0.5f);
  Conv2d conv = make_calibrated_conv(rng, x);
  EXPECT_TRUE(conv.calibrated());
  conv.set_bit_widths(3, 8);
  EXPECT_FALSE(conv.calibrated());
  EXPECT_THROW(conv.forward(x, ExecContext::quant_exact()), std::logic_error);
}

TEST(BitWidths, CalibrationUsesConfiguredWidths) {
  Rng rng(4);
  const Tensor x = randn(Shape{2, 3, 6, 6}, rng, 0.0f, 0.5f);
  Conv2d conv = make_calibrated_conv(rng, x, /*wbits=*/3, /*abits=*/6);
  EXPECT_EQ(conv.weight_qparams().bits, 3);
  EXPECT_EQ(conv.act_qparams().bits, 6);
  EXPECT_EQ(conv.weight_qparams().qmax(), 3);
}

TEST(BitWidths, LowerWidthIncreasesQuantError) {
  Rng rng(5);
  const Tensor x = randn(Shape{2, 3, 8, 8}, rng, 0.0f, 0.5f);
  Conv2d ref({3, 4, 3, 1, 1, 1, true}, rng);

  double prev_err = -1.0;
  for (const int wbits : {8, 4, 2}) {
    Rng clone_rng(5);
    Conv2d conv({3, 4, 3, 1, 1, 1, true}, clone_rng);
    conv.weight().value = ref.weight().value;
    conv.set_bit_widths(wbits, 8);
    (void)conv.forward(x, ExecContext::calibrate());
    conv.finalize_calibration(quant::Calibration::kMinPropQE);
    const Tensor y_fp = conv.forward(x, ExecContext::fp());
    const Tensor y_q = conv.forward(x, ExecContext::quant_exact());
    const double err = ops::mse(y_fp, y_q);
    EXPECT_GE(err, prev_err - 1e-9) << "wbits=" << wbits;
    prev_err = err;
  }
}

TEST(BitWidths, ApproxModeRejectsWideWeights) {
  Rng rng(6);
  const Tensor x = randn(Shape{1, 2, 5, 5}, rng, 0.0f, 0.5f);
  Conv2d conv({2, 2, 3, 1, 1, 1, true}, rng);
  conv.set_bit_widths(8, 8);
  (void)conv.forward(x, ExecContext::calibrate());
  conv.finalize_calibration(quant::Calibration::kMinPropQE);
  // Quantized-exact works at 8-bit weights...
  EXPECT_NO_THROW(conv.forward(x, ExecContext::quant_exact()));
  // ...but the 4-bit LUT operand cannot represent them.
  const approx::SignedMulTable tab;
  EXPECT_THROW(conv.forward(x, ExecContext::quant_approx(tab)), std::logic_error);
}

TEST(BitWidths, RecursiveSetterReachesAllGemmLayers) {
  Rng rng(7);
  Sequential net;
  net.emplace<Conv2d>(Conv2dConfig{3, 4, 3, 1, 1, 1, true}, rng);
  net.emplace<ReLU>();
  auto& lin = net.emplace<Linear>(4, 2, rng);
  set_bit_widths_recursive(net, 3, 7);
  auto* conv = dynamic_cast<Conv2d*>(&net[0]);
  ASSERT_NE(conv, nullptr);
  EXPECT_EQ(conv->weight_bits(), 3);
  EXPECT_EQ(conv->activation_bits(), 7);
  EXPECT_EQ(lin.weight_bits(), 3);
}

TEST(PlanOverride, TakesPrecedenceOverContext) {
  Rng rng(8);
  const Tensor x = randn(Shape{2, 3, 6, 6}, rng, 0.3f, 0.4f);
  Conv2d conv = make_calibrated_conv(rng, x);

  const approx::SignedMulTable trunc5(axmul::make_lut("trunc5"));

  // Context says trunc5, the plan says exact -> output equals quant-exact.
  const PlanResolution exact_plan =
      NetPlan(LayerPlan{.multiplier = "exact"}).resolve(conv);
  const Tensor y_plan =
      conv.forward(x, ExecContext::quant_approx(trunc5).with_plan(exact_plan));
  const Tensor y_exact = conv.forward(x, ExecContext::quant_exact());
  for (int64_t i = 0; i < y_plan.numel(); ++i)
    EXPECT_NEAR(y_plan[i], y_exact[i], 1e-3f);

  // Without the plan the damage shows.
  const Tensor y_trunc = conv.forward(x, ExecContext::quant_approx(trunc5));
  EXPECT_GT(ops::mse(y_trunc, y_exact), 0.0);
}

TEST(PlanOverride, WorksWithoutContextMultiplier) {
  // A layer with a plan multiplier can run kQuantApprox even when the
  // context carries no table (fully per-layer configuration).
  Rng rng(9);
  const Tensor x = randn(Shape{1, 2, 5, 5}, rng, 0.3f, 0.4f);
  Conv2d conv = make_calibrated_conv(rng, x);
  const PlanResolution res = NetPlan(LayerPlan{.multiplier = "trunc3"}).resolve(conv);
  res.require_approximable();
  ExecContext ctx;
  ctx.mode = ExecMode::kQuantApprox;  // ctx.mul == nullptr
  EXPECT_NO_THROW(conv.forward(x, ctx.with_plan(res)));
  EXPECT_THROW(conv.forward(x, ctx), std::logic_error);
}

TEST(PlanOverride, LinearSupportsPlans) {
  Rng rng(10);
  const Tensor x = randn(Shape{3, 6}, rng, 0.2f, 0.4f);
  Linear lin(6, 4, rng);
  (void)lin.forward(x, ExecContext::calibrate());
  lin.finalize_calibration(quant::Calibration::kMinPropQE);

  const approx::SignedMulTable trunc5(axmul::make_lut("trunc5"));
  const PlanResolution exact_plan =
      NetPlan(LayerPlan{.multiplier = "exact"}).resolve(lin);
  const Tensor y1 = lin.forward(x, ExecContext::quant_approx(trunc5).with_plan(exact_plan));
  const Tensor y2 = lin.forward(x, ExecContext::quant_exact());
  for (int64_t i = 0; i < y1.numel(); ++i) EXPECT_NEAR(y1[i], y2[i], 1e-3f);
}

TEST(PlanOverride, MixedNetworkIntermediateDamage) {
  // Uniform gentle >= mixed >= uniform aggressive (in expectation) on the
  // raw layer-output error of a two-conv stack.
  Rng rng(11);
  const Tensor x = randn(Shape{2, 3, 8, 8}, rng, 0.3f, 0.4f);
  Sequential net;
  net.emplace<Conv2d>(Conv2dConfig{3, 6, 3, 1, 1, 1, true}, rng);
  net.emplace<ReLU>();
  net.emplace<Conv2d>(Conv2dConfig{6, 6, 3, 1, 1, 1, true}, rng);
  (void)net.forward(x, ExecContext::calibrate());
  finalize_calibration_recursive(net, quant::Calibration::kMinPropQE);

  const approx::SignedMulTable gentle(axmul::make_lut("trunc1"));
  const approx::SignedMulTable aggressive(axmul::make_lut("trunc5"));
  const Tensor ref = net.forward(x, ExecContext::quant_exact());

  const Tensor y_gentle = net.forward(x, ExecContext::quant_approx(gentle));
  NetPlan mixed(LayerPlan{.multiplier = "trunc1"});
  mixed.set(enumerate_gemm_leaves(net).back().path, LayerPlan{.multiplier = "trunc5"});
  const PlanResolution res = mixed.resolve(net);
  const Tensor y_mixed = net.forward(x, ExecContext::quant_approx(gentle).with_plan(res));
  const Tensor y_aggr = net.forward(x, ExecContext::quant_approx(aggressive));

  EXPECT_LE(ops::mse(y_gentle, ref), ops::mse(y_mixed, ref) + 1e-9);
  EXPECT_LE(ops::mse(y_mixed, ref), ops::mse(y_aggr, ref) + 1e-9);
}

}  // namespace
}  // namespace axnn::nn
