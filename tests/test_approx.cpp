// Tests for the signed multiplication table and approximate integer GEMM.
#include <gtest/gtest.h>

#include "axnn/approx/approx_gemm.hpp"
#include "axnn/approx/kernels.hpp"
#include "axnn/approx/signed_lut.hpp"
#include "axnn/axmul/registry.hpp"
#include "axnn/axmul/truncated.hpp"
#include "axnn/tensor/rng.hpp"

namespace axnn::approx {
namespace {

TEST(SignedMulTable, ExactTableMatchesProducts) {
  SignedMulTable tab;
  for (int a = -127; a <= 127; a += 13)
    for (int w = -7; w <= 7; ++w) EXPECT_EQ(tab(a, w), a * w);
}

TEST(SignedMulTable, SignMagnitudeWrapping) {
  SignedMulTable tab(axmul::MultiplierLut(axmul::TruncatedMultiplier(3)));
  axmul::TruncatedMultiplier m(3);
  for (int a = -127; a <= 127; a += 7)
    for (int w = -7; w <= 7; ++w) {
      const int32_t mag = m.multiply(static_cast<uint8_t>(std::abs(a)),
                                     static_cast<uint8_t>(std::abs(w)));
      const int32_t expect = ((a < 0) != (w < 0)) ? -mag : mag;
      EXPECT_EQ(tab(a, w), expect) << "a=" << a << " w=" << w;
    }
}

TEST(SignedMulTable, ZeroOperandsGiveZero) {
  SignedMulTable tab(axmul::MultiplierLut(axmul::TruncatedMultiplier(5)));
  for (int a = -127; a <= 127; ++a) EXPECT_EQ(tab(a, 0), 0);
  for (int w = -7; w <= 7; ++w) EXPECT_EQ(tab(0, w), 0);
}

TEST(SignedMulTable, NameCarriesThrough) {
  SignedMulTable tab(axmul::make_lut("trunc2"));
  EXPECT_EQ(tab.name(), "trunc2");
}

TensorI8 random_i8(Shape shape, Rng& rng, int lo, int hi) {
  TensorI8 t(shape);
  for (int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<int8_t>(lo + rng.uniform_int(hi - lo + 1));
  return t;
}

TEST(ApproxGemm, ExactTableMatchesIntegerGemm) {
  Rng rng(1);
  const TensorI8 w = random_i8(Shape{5, 17}, rng, -7, 7);
  const TensorI8 x = random_i8(Shape{17, 9}, rng, -127, 127);
  SignedMulTable tab;  // exact
  const TensorI32 c = matmul_approx(w, x, tab);

  TensorI32 ref(Shape{5, 9});
  kernels::gemm_exact({}, w.data(), x.data(), ref.data(), 5, 17, 9);
  for (int64_t i = 0; i < c.numel(); ++i) EXPECT_EQ(c[i], ref[i]);
}

TEST(ApproxGemm, MatchesScalarReferenceWithApproxTable) {
  Rng rng(2);
  const TensorI8 w = random_i8(Shape{4, 23}, rng, -7, 7);
  const TensorI8 x = random_i8(Shape{23, 11}, rng, 0, 127);
  SignedMulTable tab(axmul::make_lut("trunc4"));
  const TensorI32 c = matmul_approx(w, x, tab);
  for (int64_t i = 0; i < 4; ++i)
    for (int64_t j = 0; j < 11; ++j) {
      int32_t acc = 0;
      for (int64_t k = 0; k < 23; ++k) acc += tab(x(k, j), w(i, k));
      EXPECT_EQ(c(i, j), acc);
    }
}

TEST(ApproxGemm, ZeroWeightRowsGiveZeroOutput) {
  Rng rng(3);
  TensorI8 w(Shape{2, 8}, std::vector<int8_t>(16, 0));
  const TensorI8 x = random_i8(Shape{8, 5}, rng, -127, 127);
  SignedMulTable tab(axmul::make_lut("trunc5"));
  const TensorI32 c = matmul_approx(w, x, tab);
  for (int64_t i = 0; i < c.numel(); ++i) EXPECT_EQ(c[i], 0);
}

TEST(ApproxGemm, ShapeChecks) {
  TensorI8 w(Shape{2, 3}), x(Shape{4, 5});
  SignedMulTable tab;
  EXPECT_THROW(matmul_approx(w, x, tab), std::invalid_argument);
}

TEST(ApproxGemm, TruncationUnderestimatesMagnitude) {
  // With non-negative activations and weights, trunc products <= exact.
  Rng rng(4);
  const TensorI8 w = random_i8(Shape{6, 32}, rng, 0, 7);
  const TensorI8 x = random_i8(Shape{32, 16}, rng, 0, 127);
  SignedMulTable tab(axmul::make_lut("trunc5"));
  const TensorI32 approx = matmul_approx(w, x, tab);
  TensorI32 exact(Shape{6, 16});
  kernels::gemm_exact({}, w.data(), x.data(), exact.data(), 6, 32, 16);
  for (int64_t i = 0; i < approx.numel(); ++i) EXPECT_LE(approx[i], exact[i]);
}

class ApproxGemmSizes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ApproxGemmSizes, ConsistentAcrossSizes) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 131 + k * 17 + n);
  const TensorI8 w = random_i8(Shape{m, k}, rng, -7, 7);
  const TensorI8 x = random_i8(Shape{k, n}, rng, -127, 127);
  SignedMulTable tab(axmul::make_lut("trunc3"));
  const TensorI32 c = matmul_approx(w, x, tab);
  // Spot-check corners against the scalar definition (Eq. 4).
  for (const auto& [i, j] : {std::pair<int64_t, int64_t>{0, 0},
                            {m - 1, n - 1},
                            {0, n - 1},
                            {m - 1, 0}}) {
    int32_t acc = 0;
    for (int64_t kk = 0; kk < k; ++kk) acc += tab(x(kk, j), w(i, kk));
    EXPECT_EQ(c(i, j), acc);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ApproxGemmSizes,
                         ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(3, 9, 4),
                                           std::make_tuple(16, 36, 64),
                                           std::make_tuple(8, 72, 100),
                                           std::make_tuple(31, 27, 33)));

}  // namespace
}  // namespace axnn::approx
