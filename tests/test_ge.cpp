// Tests for gradient estimation: the piecewise-linear error model and its
// Monte-Carlo fitting (paper Sec. III-B, Eqs. 11-13).
#include <gtest/gtest.h>

#include <cmath>

#include "axnn/axmul/registry.hpp"
#include "axnn/ge/error_fit.hpp"
#include "axnn/ge/monte_carlo.hpp"
#include "axnn/tensor/rng.hpp"

namespace axnn::ge {
namespace {

TEST(ErrorFit, EvalClampsAtBounds) {
  ErrorFit f{/*a=*/10.0, /*b=*/-20.0, /*k=*/-0.5, /*c=*/0.0};
  EXPECT_DOUBLE_EQ(f.eval(0.0), 0.0);
  EXPECT_DOUBLE_EQ(f.eval(10.0), -5.0);
  EXPECT_DOUBLE_EQ(f.eval(100.0), -20.0);   // lower clamp
  EXPECT_DOUBLE_EQ(f.eval(-100.0), 10.0);   // upper clamp
}

TEST(ErrorFit, DerivativeIsKInsideAndZeroOutside) {
  ErrorFit f{10.0, -20.0, -0.5, 0.0};
  EXPECT_DOUBLE_EQ(f.derivative(0.0), -0.5);     // inside
  EXPECT_DOUBLE_EQ(f.derivative(100.0), 0.0);    // clamped low
  EXPECT_DOUBLE_EQ(f.derivative(-100.0), 0.0);   // clamped high
}

TEST(ErrorFit, ConstantFitReportsSTEEquivalence) {
  ErrorFit f{5.0, -5.0, 0.0, 1.0};
  EXPECT_TRUE(f.is_constant());
  EXPECT_DOUBLE_EQ(f.derivative(123.0), 0.0);
}

TEST(FitPiecewiseLinear, RecoversCleanLine) {
  std::vector<std::pair<double, double>> samples;
  for (int i = -50; i <= 50; ++i)
    samples.emplace_back(static_cast<double>(i), -0.2 * i + 3.0);
  const ErrorFit f = fit_piecewise_linear(samples);
  EXPECT_NEAR(f.k, -0.2, 1e-9);
  EXPECT_NEAR(f.c, 3.0, 1e-9);
  EXPECT_FALSE(f.is_constant());
}

TEST(FitPiecewiseLinear, CollapsesUnbiasedNoiseToConstant) {
  // Zero-mean noise uncorrelated with y -> slope must be deemed
  // insignificant (EvoApprox behaviour, paper Fig. 3).
  Rng rng(1);
  std::vector<std::pair<double, double>> samples;
  for (int i = 0; i < 2000; ++i)
    samples.emplace_back(rng.uniform(-1000.0, 1000.0), rng.normal(0.0, 40.0));
  const ErrorFit f = fit_piecewise_linear(samples);
  EXPECT_TRUE(f.is_constant());
}

TEST(FitPiecewiseLinear, ClampsFromPercentiles) {
  std::vector<std::pair<double, double>> samples;
  for (int i = 0; i < 1000; ++i)
    samples.emplace_back(static_cast<double>(i), -1.0 * i);
  const ErrorFit f = fit_piecewise_linear(samples);
  EXPECT_LE(f.b, -900.0);
  EXPECT_GE(f.a, -100.0);
  EXPECT_GE(f.a, f.b);
}

TEST(FitPiecewiseLinear, NeedsTwoSamples) {
  EXPECT_THROW(fit_piecewise_linear({{1.0, 2.0}}), std::invalid_argument);
}

TEST(FitPiecewiseLinear, DegenerateYSpreadIsConstant) {
  std::vector<std::pair<double, double>> samples(10, {5.0, 2.0});
  const ErrorFit f = fit_piecewise_linear(samples);
  EXPECT_TRUE(f.is_constant());
  EXPECT_NEAR(f.eval(5.0), 2.0, 1e-9);
}

TEST(MonteCarlo, DeterministicForSameSeed) {
  const approx::SignedMulTable tab(axmul::make_lut("trunc4"));
  McConfig cfg;
  const auto s1 = sample_accumulated_error(tab, cfg);
  const auto s2 = sample_accumulated_error(tab, cfg);
  ASSERT_EQ(s1.size(), s2.size());
  for (size_t i = 0; i < s1.size(); ++i) {
    EXPECT_DOUBLE_EQ(s1[i].first, s2[i].first);
    EXPECT_DOUBLE_EQ(s1[i].second, s2[i].second);
  }
}

TEST(MonteCarlo, SampleCountMatchesConfig) {
  const approx::SignedMulTable tab(axmul::make_lut("trunc3"));
  McConfig cfg;
  cfg.num_sims = 7;
  cfg.outputs_per_sim = 13;
  EXPECT_EQ(sample_accumulated_error(tab, cfg).size(), 7u * 13u);
}

TEST(MonteCarlo, ExactMultiplierHasZeroError) {
  const approx::SignedMulTable tab;  // exact
  for (const auto& [y, eps] : sample_accumulated_error(tab, {}))
    EXPECT_DOUBLE_EQ(eps, 0.0);
}

TEST(MonteCarlo, TruncatedFitHasNegativeSlope) {
  // Fig. 2 of the paper: truncated multipliers have biased error with a
  // negative slope in the accumulator value.
  const approx::SignedMulTable tab(axmul::make_lut("trunc5"));
  const ErrorFit f = fit_multiplier_error(tab);
  EXPECT_FALSE(f.is_constant());
  EXPECT_LT(f.k, -0.01);
  // Error of truncation is negative for positive accumulators.
  EXPECT_LT(f.eval(1000.0), 0.0);
}

TEST(MonteCarlo, EvoApproxLikeFitIsConstant) {
  // Fig. 3: unbiased error -> constant fit -> GE degenerates to STE.
  const approx::SignedMulTable tab(axmul::make_lut("evoa228"));
  const ErrorFit f = fit_multiplier_error(tab);
  EXPECT_TRUE(f.is_constant());
}

class TruncatedSlopeSweep : public ::testing::TestWithParam<int> {};

TEST_P(TruncatedSlopeSweep, DeeperTruncationSteeperSlope) {
  const int t = GetParam();
  const approx::SignedMulTable shallow(axmul::make_lut("trunc" + std::to_string(t)));
  const approx::SignedMulTable deep(axmul::make_lut("trunc" + std::to_string(t + 1)));
  const ErrorFit fs = fit_multiplier_error(shallow);
  const ErrorFit fd = fit_multiplier_error(deep);
  EXPECT_LE(fd.k, fs.k + 0.01);  // more truncation -> more negative slope
}

INSTANTIATE_TEST_SUITE_P(Depths, TruncatedSlopeSweep, ::testing::Values(3, 4, 5, 6));

TEST(MonteCarlo, SignedActivationConfigWorks) {
  const approx::SignedMulTable tab(axmul::make_lut("trunc4"));
  McConfig cfg;
  cfg.signed_activations = true;
  const auto samples = sample_accumulated_error(tab, cfg);
  // Signed activations produce both positive and negative accumulators.
  bool pos = false, neg = false;
  for (const auto& [y, eps] : samples) {
    pos |= y > 0;
    neg |= y < 0;
  }
  EXPECT_TRUE(pos);
  EXPECT_TRUE(neg);
}

}  // namespace
}  // namespace axnn::ge
