// Tests for the NN layer stack: im2col, conv, linear, batchnorm,
// activations, pooling, containers, SGD, serialization.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "axnn/approx/signed_lut.hpp"
#include "axnn/axmul/registry.hpp"
#include "axnn/nn/activations.hpp"
#include "axnn/nn/batchnorm.hpp"
#include "axnn/nn/conv2d.hpp"
#include "axnn/nn/linear.hpp"
#include "axnn/nn/loss.hpp"
#include "axnn/nn/pooling.hpp"
#include "axnn/nn/sequential.hpp"
#include "axnn/nn/serialize.hpp"
#include "axnn/nn/sgd.hpp"
#include "axnn/tensor/ops.hpp"

namespace axnn::nn {
namespace {

const ExecContext kFp = ExecContext::fp();
const ExecContext kFpTrain = ExecContext::fp(/*training=*/true);

TEST(Im2col, GeometryComputation) {
  const ConvGeom g = ConvGeom::of(Shape{2, 3, 8, 8}, 3, 1, 1);
  EXPECT_EQ(g.oh, 8);
  EXPECT_EQ(g.ow, 8);
  EXPECT_EQ(g.patch_rows(), 27);
  EXPECT_EQ(g.out_cols(), 128);
  const ConvGeom s2 = ConvGeom::of(Shape{1, 1, 8, 8}, 3, 2, 1);
  EXPECT_EQ(s2.oh, 4);
}

TEST(Im2col, ValuesAndPadding) {
  // 1x1x3x3 input, k=3, p=1: centre column equals the full image.
  Tensor x(Shape{1, 1, 3, 3});
  for (int64_t i = 0; i < 9; ++i) x[i] = static_cast<float>(i + 1);
  const ConvGeom g = ConvGeom::of(x.shape(), 3, 1, 1);
  const Tensor cols = im2col(x, g);
  EXPECT_EQ(cols.shape(), (Shape{9, 9}));
  // Row 4 = (kh=1, kw=1) -> identity tap.
  for (int64_t p = 0; p < 9; ++p) EXPECT_FLOAT_EQ(cols(4, p), x[p]);
  // Row 0 = (kh=0, kw=0): output (0,0) reads x(-1,-1) = padding zero.
  EXPECT_FLOAT_EQ(cols(0, 0), 0.0f);
  // Output (2,2) with (kh=0,kw=0) reads x(1,1) = 5.
  EXPECT_FLOAT_EQ(cols(0, 8), 5.0f);
}

TEST(Im2col, Col2imIsAdjoint) {
  // <im2col(x), c> == <x, col2im(c)> for random x, c — the defining property
  // of the backward scatter.
  Rng rng(3);
  const Tensor x = randn(Shape{2, 3, 6, 6}, rng);
  const ConvGeom g = ConvGeom::of(x.shape(), 3, 2, 1);
  const Tensor cols = im2col(x, g);
  const Tensor c = randn(cols.shape(), rng);
  const Tensor xback = col2im(c, g);
  double lhs = 0.0, rhs = 0.0;
  for (int64_t i = 0; i < cols.numel(); ++i) lhs += static_cast<double>(cols[i]) * c[i];
  for (int64_t i = 0; i < x.numel(); ++i) rhs += static_cast<double>(x[i]) * xback[i];
  EXPECT_NEAR(lhs, rhs, 1e-2);
}

Tensor naive_conv(const Tensor& x, const Tensor& w, const Tensor* bias, int64_t stride,
                  int64_t padding, int64_t groups) {
  const int64_t n = x.shape()[0], c = x.shape()[1], h = x.shape()[2], wd = x.shape()[3];
  const int64_t o = w.shape()[0], cg = w.shape()[1], k = w.shape()[2];
  const int64_t og = o / groups;
  const int64_t oh = (h + 2 * padding - k) / stride + 1;
  const int64_t ow = (wd + 2 * padding - k) / stride + 1;
  Tensor y(Shape{n, o, oh, ow}, 0.0f);
  for (int64_t b = 0; b < n; ++b)
    for (int64_t oc = 0; oc < o; ++oc) {
      const int64_t g = oc / og;
      for (int64_t i = 0; i < oh; ++i)
        for (int64_t j = 0; j < ow; ++j) {
          double acc = bias != nullptr ? (*bias)[oc] : 0.0;
          for (int64_t ic = 0; ic < cg; ++ic)
            for (int64_t kh = 0; kh < k; ++kh)
              for (int64_t kw = 0; kw < k; ++kw) {
                const int64_t ih = i * stride - padding + kh;
                const int64_t iw = j * stride - padding + kw;
                if (ih < 0 || ih >= h || iw < 0 || iw >= wd) continue;
                acc += static_cast<double>(x(b, g * cg + ic, ih, iw)) * w(oc, ic, kh, kw);
              }
          y(b, oc, i, j) = static_cast<float>(acc);
        }
    }
  (void)c;
  return y;
}

struct ConvCase {
  int64_t in_ch, out_ch, k, stride, pad, groups, hw;
};

class ConvSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvSweep, ForwardMatchesNaiveReference) {
  const ConvCase cc = GetParam();
  Rng rng(99);
  Conv2d conv({cc.in_ch, cc.out_ch, cc.k, cc.stride, cc.pad, cc.groups, true}, rng);
  // Non-trivial bias.
  for (int64_t i = 0; i < cc.out_ch; ++i)
    conv.bias_param().value[i] = 0.1f * static_cast<float>(i);
  const Tensor x = randn(Shape{2, cc.in_ch, cc.hw, cc.hw}, rng);
  const Tensor y = conv.forward(x, kFp);
  const Tensor ref = naive_conv(x, conv.weight().value, &conv.bias_param().value, cc.stride,
                                cc.pad, cc.groups);
  ASSERT_EQ(y.shape(), ref.shape());
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_NEAR(y[i], ref[i], 2e-3f);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ConvSweep,
    ::testing::Values(ConvCase{1, 1, 1, 1, 0, 1, 4},    // pointwise minimal
                      ConvCase{3, 8, 3, 1, 1, 1, 8},    // standard 3x3
                      ConvCase{4, 6, 3, 2, 1, 1, 9},    // strided, odd size
                      ConvCase{8, 8, 3, 1, 1, 8, 6},    // depthwise
                      ConvCase{4, 8, 1, 1, 0, 2, 5},    // grouped pointwise
                      ConvCase{2, 4, 5, 2, 2, 1, 11})); // 5x5 kernel

TEST(Conv2d, MacCount) {
  Rng rng(1);
  Conv2d conv({3, 8, 3, 1, 1, 1, false}, rng);
  const Tensor x(Shape{2, 3, 8, 8}, 0.0f);
  (void)conv.forward(x, kFp);
  // per sample: 8 * 3 * 9 * 64 = 13824; batch of 2.
  EXPECT_EQ(conv.last_mac_count(), 2 * 13824);
  EXPECT_EQ(conv.macs_per_sample(8, 8), 13824);
}

TEST(Conv2d, ConfigValidation) {
  Rng rng(1);
  EXPECT_THROW(Conv2d({0, 4, 3, 1, 1, 1, true}, rng), std::invalid_argument);
  EXPECT_THROW(Conv2d({3, 4, 3, 1, 1, 2, true}, rng), std::invalid_argument);  // 3 % 2
}

TEST(Conv2d, QuantForwardBeforeCalibrationThrows) {
  Rng rng(1);
  Conv2d conv({2, 2, 3, 1, 1, 1, true}, rng);
  const Tensor x(Shape{1, 2, 4, 4}, 0.5f);
  EXPECT_THROW(conv.forward(x, ExecContext::quant_exact()), std::logic_error);
}

TEST(Conv2d, QuantExactEqualsFakeQuantReference) {
  Rng rng(7);
  Conv2d conv({3, 4, 3, 1, 1, 1, true}, rng);
  const Tensor x = randn(Shape{2, 3, 6, 6}, rng, 0.0f, 0.5f);
  (void)conv.forward(x, ExecContext::calibrate());
  conv.finalize_calibration(quant::Calibration::kMinPropQE);

  const Tensor y = conv.forward(x, ExecContext::quant_exact());
  const Tensor xq = quant::fake_quantize(x, conv.act_qparams());
  const Tensor wq = quant::fake_quantize(conv.weight().value, conv.weight_qparams());
  const Tensor ref = naive_conv(xq, wq, &conv.bias_param().value, 1, 1, 1);
  for (int64_t i = 0; i < y.numel(); ++i) EXPECT_NEAR(y[i], ref[i], 2e-3f);
}

TEST(Conv2d, ApproxWithExactTableMatchesQuantExact) {
  Rng rng(8);
  Conv2d conv({3, 4, 3, 1, 1, 1, true}, rng);
  const Tensor x = randn(Shape{2, 3, 6, 6}, rng, 0.0f, 0.5f);
  (void)conv.forward(x, ExecContext::calibrate());
  conv.finalize_calibration(quant::Calibration::kMinPropQE);

  const Tensor yq = conv.forward(x, ExecContext::quant_exact());
  const approx::SignedMulTable exact_tab;
  const Tensor ya = conv.forward(x, ExecContext::quant_approx(exact_tab));
  for (int64_t i = 0; i < yq.numel(); ++i) EXPECT_NEAR(ya[i], yq[i], 2e-3f);
}

TEST(Conv2d, ApproxTruncatedReducesMagnitude) {
  Rng rng(9);
  Conv2d conv({3, 8, 3, 1, 1, 1, false}, rng);
  Tensor x = randn(Shape{2, 3, 8, 8}, rng, 0.5f, 0.3f);
  for (int64_t i = 0; i < x.numel(); ++i) x[i] = std::max(0.0f, x[i]);  // post-ReLU-like
  (void)conv.forward(x, ExecContext::calibrate());
  conv.finalize_calibration(quant::Calibration::kMinPropQE);

  const Tensor yq = conv.forward(x, ExecContext::quant_exact());
  const approx::SignedMulTable trunc(axmul::make_lut("trunc5"));
  const Tensor ya = conv.forward(x, ExecContext::quant_approx(trunc));
  EXPECT_LT(ops::sum(ya), ops::sum(yq));  // truncation under-estimates
  EXPECT_GT(ops::mse(ya, yq), 0.0);
}

TEST(Conv2d, FoldScaleShift) {
  Rng rng(10);
  Conv2d conv({2, 3, 3, 1, 1, 1, false}, rng);
  const Tensor x = randn(Shape{1, 2, 5, 5}, rng);
  const Tensor y0 = conv.forward(x, kFp);
  conv.fold_scale_shift({2.0f, 0.5f, 1.0f}, {0.1f, -0.2f, 0.0f});
  const Tensor y1 = conv.forward(x, kFp);
  for (int64_t i = 0; i < 5 * 5; ++i) {
    EXPECT_NEAR(y1[i], 2.0f * y0[i] + 0.1f, 1e-4f);                 // channel 0
    EXPECT_NEAR(y1[25 + i], 0.5f * y0[25 + i] - 0.2f, 1e-4f);       // channel 1
    EXPECT_NEAR(y1[50 + i], y0[50 + i], 1e-4f);                     // channel 2
  }
}

TEST(Linear, ForwardMatchesReference) {
  Rng rng(11);
  Linear lin(5, 3, rng);
  lin.bias_param().value[1] = 0.5f;
  const Tensor x = randn(Shape{4, 5}, rng);
  const Tensor y = lin.forward(x, kFp);
  for (int64_t i = 0; i < 4; ++i)
    for (int64_t j = 0; j < 3; ++j) {
      double acc = lin.bias_param().value[j];
      for (int64_t k = 0; k < 5; ++k) acc += static_cast<double>(x(i, k)) * lin.weight().value(j, k);
      EXPECT_NEAR(y(i, j), acc, 1e-4f);
    }
}

TEST(Linear, ApproxExactTableMatchesQuantExact) {
  Rng rng(12);
  Linear lin(9, 4, rng);
  const Tensor x = randn(Shape{3, 9}, rng, 0.0f, 0.5f);
  (void)lin.forward(x, ExecContext::calibrate());
  lin.finalize_calibration(quant::Calibration::kMinPropQE);
  const Tensor yq = lin.forward(x, ExecContext::quant_exact());
  const approx::SignedMulTable exact_tab;
  const Tensor ya = lin.forward(x, ExecContext::quant_approx(exact_tab));
  for (int64_t i = 0; i < yq.numel(); ++i) EXPECT_NEAR(ya[i], yq[i], 1e-3f);
}

TEST(BatchNorm, NormalizesInTraining) {
  Rng rng(13);
  BatchNorm2d bn(3);
  const Tensor x = randn(Shape{4, 3, 5, 5}, rng, 2.0f, 3.0f);
  const Tensor y = bn.forward(x, kFpTrain);
  // Per-channel mean ~0, var ~1.
  const int64_t hw = 25;
  for (int64_t c = 0; c < 3; ++c) {
    double mean = 0.0, var = 0.0;
    for (int64_t b = 0; b < 4; ++b)
      for (int64_t i = 0; i < hw; ++i) mean += y(b, c, i / 5, i % 5);
    mean /= 4 * hw;
    for (int64_t b = 0; b < 4; ++b)
      for (int64_t i = 0; i < hw; ++i) {
        const double d = y(b, c, i / 5, i % 5) - mean;
        var += d * d;
      }
    var /= 4 * hw;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(BatchNorm, EvalUsesRunningStats) {
  Rng rng(14);
  BatchNorm2d bn(2);
  // Warm up the running statistics.
  for (int i = 0; i < 50; ++i) {
    const Tensor x = randn(Shape{8, 2, 4, 4}, rng, 1.0f, 2.0f);
    (void)bn.forward(x, kFpTrain);
  }
  const Tensor x = randn(Shape{8, 2, 4, 4}, rng, 1.0f, 2.0f);
  const Tensor y = bn.forward(x, kFp);
  EXPECT_NEAR(ops::mean(y), 0.0, 0.2);
}

TEST(BatchNorm, FoldIntoConvMatchesEval) {
  Rng rng(15);
  Conv2d conv({3, 4, 3, 1, 1, 1, false}, rng);
  BatchNorm2d bn(4);
  // Give BN non-trivial state.
  for (int i = 0; i < 30; ++i) {
    const Tensor x = randn(Shape{4, 3, 6, 6}, rng);
    (void)bn.forward(conv.forward(x, kFpTrain), kFpTrain);
  }
  bn.gamma().value[0] = 1.7f;
  bn.beta().value[2] = -0.4f;

  const Tensor x = randn(Shape{2, 3, 6, 6}, rng);
  const Tensor ref = bn.forward(conv.forward(x, kFp), kFp);
  bn.fold_into(conv);
  const Tensor folded = conv.forward(x, kFp);
  for (int64_t i = 0; i < ref.numel(); ++i) EXPECT_NEAR(folded[i], ref[i], 1e-3f);
}

TEST(Sequential, FoldBatchnormsRemovesBnLayers) {
  Rng rng(16);
  Sequential net;
  net.emplace<Conv2d>(Conv2dConfig{3, 4, 3, 1, 1, 1, false}, rng);
  net.emplace<BatchNorm2d>(4);
  net.emplace<ReLU>();
  net.emplace<Conv2d>(Conv2dConfig{4, 4, 3, 1, 1, 1, false}, rng);
  net.emplace<BatchNorm2d>(4);
  for (int i = 0; i < 20; ++i) {
    const Tensor x = randn(Shape{4, 3, 6, 6}, rng);
    (void)net.forward(x, kFpTrain);
  }
  const Tensor x = randn(Shape{2, 3, 6, 6}, rng);
  const Tensor ref = net.forward(x, kFp);
  EXPECT_EQ(net.size(), 5u);
  net.fold_batchnorms();
  EXPECT_EQ(net.size(), 3u);
  const Tensor folded = net.forward(x, kFp);
  for (int64_t i = 0; i < ref.numel(); ++i) EXPECT_NEAR(folded[i], ref[i], 1e-3f);
}

TEST(Activations, ReLUForwardBackward) {
  ReLU relu;
  Tensor x(Shape{4});
  x[0] = -1.0f; x[1] = 0.0f; x[2] = 2.0f; x[3] = -0.5f;
  const Tensor y = relu.forward(x, kFp);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[2], 2.0f);
  Tensor dy(Shape{4}, 1.0f);
  const Tensor dx = relu.backward(dy);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[2], 1.0f);
}

TEST(Activations, ReLU6Saturates) {
  ReLU6 relu6;
  Tensor x(Shape{3});
  x[0] = -1.0f; x[1] = 3.0f; x[2] = 9.0f;
  const Tensor y = relu6.forward(x, kFp);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 3.0f);
  EXPECT_FLOAT_EQ(y[2], 6.0f);
  Tensor dy(Shape{3}, 1.0f);
  const Tensor dx = relu6.backward(dy);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[1], 1.0f);
  EXPECT_FLOAT_EQ(dx[2], 0.0f);
}

TEST(Pooling, GlobalAvgPool) {
  Tensor x(Shape{1, 2, 2, 2});
  for (int64_t i = 0; i < 8; ++i) x[i] = static_cast<float>(i);
  GlobalAvgPool pool;
  const Tensor y = pool.forward(x, kFp);
  EXPECT_EQ(y.shape(), (Shape{1, 2}));
  EXPECT_FLOAT_EQ(y(0, 0), 1.5f);   // mean of 0..3
  EXPECT_FLOAT_EQ(y(0, 1), 5.5f);   // mean of 4..7
  Tensor dy(Shape{1, 2}, 4.0f);
  const Tensor dx = pool.backward(dy);
  for (int64_t i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(dx[i], 1.0f);
}

TEST(Pooling, AvgPool2x2) {
  Tensor x(Shape{1, 1, 2, 2});
  x[0] = 1.0f; x[1] = 2.0f; x[2] = 3.0f; x[3] = 4.0f;
  AvgPool2x2 pool;
  const Tensor y = pool.forward(x, kFp);
  EXPECT_FLOAT_EQ(y[0], 2.5f);
  EXPECT_THROW(pool.forward(Tensor(Shape{1, 1, 3, 3}), kFp), std::invalid_argument);
}

TEST(Loss, CrossEntropyKnownValue) {
  Tensor logits(Shape{1, 2}, 0.0f);  // uniform -> loss = ln 2
  const LossResult r = cross_entropy(logits, {0});
  EXPECT_NEAR(r.value, std::log(2.0), 1e-6);
  EXPECT_NEAR(r.grad(0, 0), 0.5f - 1.0f, 1e-6f);
  EXPECT_NEAR(r.grad(0, 1), 0.5f, 1e-6f);
}

TEST(Loss, CrossEntropyRejectsBadLabels) {
  Tensor logits(Shape{2, 3}, 0.0f);
  EXPECT_THROW(cross_entropy(logits, {0}), std::invalid_argument);
  EXPECT_THROW(cross_entropy(logits, {0, 5}), std::invalid_argument);
}

TEST(Loss, MseLossGradient) {
  Tensor a(Shape{2}, 1.0f), b(Shape{2}, 0.0f);
  const LossResult r = mse_loss(a, b);
  EXPECT_DOUBLE_EQ(r.value, 1.0);
  EXPECT_FLOAT_EQ(r.grad[0], 1.0f);  // 2*(1-0)/2
}

TEST(Sgd, GradientDescentReducesQuadratic) {
  // Minimise f(w) = 0.5 * w^2 by feeding grad = w.
  Param w(Tensor(Shape{1}, 4.0f));
  Sgd sgd({&w}, {0.1f, 0.0f, 0.0f, 0.1f, 0});
  for (int i = 0; i < 100; ++i) {
    w.grad[0] = w.value[0];
    sgd.step();
  }
  EXPECT_NEAR(w.value[0], 0.0f, 1e-3f);
}

TEST(Sgd, MomentumAcceleratesDescent) {
  Param w1(Tensor(Shape{1}, 4.0f)), w2(Tensor(Shape{1}, 4.0f));
  Sgd plain({&w1}, {0.01f, 0.0f, 0.0f, 0.1f, 0});
  Sgd mom({&w2}, {0.01f, 0.9f, 0.0f, 0.1f, 0});
  for (int i = 0; i < 20; ++i) {
    w1.grad[0] = w1.value[0];
    w2.grad[0] = w2.value[0];
    plain.step();
    mom.step();
    w1.zero_grad();
    w2.zero_grad();
  }
  EXPECT_LT(std::fabs(w2.value[0]), std::fabs(w1.value[0]));
}

TEST(Sgd, StepDecaySchedule) {
  Param w(Tensor(Shape{1}, 1.0f));
  Sgd sgd({&w}, {1.0f, 0.0f, 0.0f, 0.1f, 2});
  EXPECT_FLOAT_EQ(sgd.lr(), 1.0f);
  sgd.on_epoch_end();
  EXPECT_FLOAT_EQ(sgd.lr(), 1.0f);
  sgd.on_epoch_end();
  EXPECT_FLOAT_EQ(sgd.lr(), 0.1f);
  sgd.on_epoch_end();
  sgd.on_epoch_end();
  EXPECT_NEAR(sgd.lr(), 0.01f, 1e-6f);
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Param w(Tensor(Shape{1}, 1.0f));
  Sgd sgd({&w}, {0.1f, 0.0f, 0.5f, 0.1f, 0});
  sgd.step();  // grad = 0, decay pulls toward zero
  EXPECT_LT(w.value[0], 1.0f);
}

TEST(Serialize, RoundTripPreservesParamsAndBuffers) {
  Rng rng(17);
  Sequential net;
  net.emplace<Conv2d>(Conv2dConfig{2, 3, 3, 1, 1, 1, true}, rng);
  net.emplace<BatchNorm2d>(3);
  net.emplace<ReLU>();
  // Mutate BN buffers.
  for (int i = 0; i < 5; ++i) (void)net.forward(randn(Shape{2, 2, 4, 4}, rng), kFpTrain);

  const std::string path =
      (std::filesystem::temp_directory_path() / "axnn_test_params.axnp").string();
  save_params(net, path);
  EXPECT_TRUE(is_param_file(path));

  Rng rng2(99);
  Sequential net2;
  net2.emplace<Conv2d>(Conv2dConfig{2, 3, 3, 1, 1, 1, true}, rng2);
  net2.emplace<BatchNorm2d>(3);
  net2.emplace<ReLU>();
  load_params(net2, path);

  const Tensor x = randn(Shape{1, 2, 4, 4}, rng);
  const Tensor y1 = net.forward(x, kFp);
  const Tensor y2 = net2.forward(x, kFp);
  for (int64_t i = 0; i < y1.numel(); ++i) EXPECT_FLOAT_EQ(y1[i], y2[i]);
  std::filesystem::remove(path);
}

TEST(Serialize, MismatchedStructureThrows) {
  Rng rng(18);
  Sequential net;
  net.emplace<Linear>(4, 2, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "axnn_test_bad.axnp").string();
  save_params(net, path);
  Sequential other;
  other.emplace<Linear>(4, 3, rng);
  EXPECT_THROW(load_params(other, path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Serialize, MissingFile) {
  Sequential net;
  EXPECT_THROW(load_params(net, "/nonexistent/nope.axnp"), std::runtime_error);
  EXPECT_FALSE(is_param_file("/nonexistent/nope.axnp"));
}

TEST(LayerTree, CollectParamsAndCounts) {
  Rng rng(19);
  Sequential net;
  net.emplace<Conv2d>(Conv2dConfig{3, 4, 3, 1, 1, 1, true}, rng);   // 108 + 4
  net.emplace<Linear>(4, 2, rng);                                   // 8 + 2
  EXPECT_EQ(collect_params(net).size(), 4u);
  EXPECT_EQ(count_parameters(net), 108 + 4 + 8 + 2);
}

TEST(LayerTree, CopyStateTransfersEverything) {
  Rng rng(20);
  Sequential a, b;
  a.emplace<Conv2d>(Conv2dConfig{2, 2, 3, 1, 1, 1, true}, rng);
  a.emplace<BatchNorm2d>(2);
  b.emplace<Conv2d>(Conv2dConfig{2, 2, 3, 1, 1, 1, true}, rng);
  b.emplace<BatchNorm2d>(2);
  for (int i = 0; i < 5; ++i) (void)a.forward(randn(Shape{2, 2, 4, 4}, rng), kFpTrain);
  copy_state(a, b);
  const Tensor x = randn(Shape{1, 2, 4, 4}, rng);
  const Tensor ya = a.forward(x, kFp);
  const Tensor yb = b.forward(x, kFp);
  for (int64_t i = 0; i < ya.numel(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(LayerTree, ZeroGradRecursive) {
  Rng rng(21);
  Sequential net;
  net.emplace<Conv2d>(Conv2dConfig{1, 1, 3, 1, 1, 1, true}, rng);
  auto params = collect_params(net);
  params[0]->grad.fill(5.0f);
  net.zero_grad();
  EXPECT_FLOAT_EQ(params[0]->grad[0], 0.0f);
}

}  // namespace
}  // namespace axnn::nn
