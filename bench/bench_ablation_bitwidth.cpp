// Extension bench (paper outlook: "extended for lower bitwidth
// quantization") — weight bit-width sweep.
//
// For W in {2, 3, 4, 6, 8} (activations fixed at 8 bits) this calibrates
// the pre-trained ResNet20 at 8AxW and reports the zero-shot quantized
// accuracy, plus — for widths that fit the 4-bit hardware operand — the
// approximate accuracy under trunc3 before fine-tuning.
#include "bench_common.hpp"

AXNN_BENCH_CASE(ablation_bitwidth, "Extension — weight bit-width sweep (8AxW, ResNet20)") {
  using namespace axnn;

  auto cfg = bench::workbench_config(core::ModelKind::kResNet20);
  const approx::SignedMulTable trunc3(axmul::make_lut("trunc3"));

  core::Table table({"weight bits", "8AxW acc before FT[%]", "trunc3 zero-shot[%]"});
  for (const int wbits : {2, 3, 4, 6, 8}) {
    core::Workbench wb(cfg);  // fresh FP weights (cached), fresh calibration
    nn::set_bit_widths_recursive(wb.model(), wbits, 8);
    train::calibrate_model(wb.model(), wb.data().train, cfg.calib_samples, 128,
                           cfg.calibration);
    const double qacc = train::evaluate_accuracy(wb.model(), wb.data().test,
                                                 nn::ExecContext::quant_exact());
    std::string approx_acc = "n/a (>4-bit operand)";
    if (wbits <= 4) {
      const double aacc = train::evaluate_accuracy(wb.model(), wb.data().test,
                                                   nn::ExecContext::quant_approx(trunc3));
      approx_acc = bench::pct(aacc);
    }
    table.add_row({std::to_string(wbits), bench::pct(qacc), approx_acc});
    std::printf("  W=%d done\n", wbits);
  }
  std::printf("\n");
  bench::emit_table(ctx, "bitwidth_sweep", table);
  std::printf("\nExpected shape: monotone accuracy loss as weight bits shrink; 4-bit is the\n"
              "paper's operating point, 2-3 bits need the same fine-tuning flow to recover.\n");
  return 0;
}
