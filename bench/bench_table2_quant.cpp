// Table II — 8A4W quantization results: accuracy before fine-tuning, after
// normal fine-tuning, and after fine-tuning with KD (quantization stage,
// T1 = 1).
//
// Paper: ResNet20 82.88 / 90.51 / 90.60; ResNet32 83.66 / 91.23 / 91.29;
// MobileNetV2 10.01 / 93.70 / 93.81. Expected shape: a visible drop before
// fine-tuning, near-FP recovery after, KD slightly ahead of normal.
#include "bench_common.hpp"

AXNN_BENCH_CASE(table2_quant, "Table II — 8A4W quantization") {
  using namespace axnn;

  struct PaperRow {
    double before, normal_ft, kd_ft;
  };
  const std::vector<std::pair<core::ModelKind, PaperRow>> models = {
      {core::ModelKind::kResNet20, {82.88, 90.51, 90.60}},
      {core::ModelKind::kResNet32, {83.66, 91.23, 91.29}},
      {core::ModelKind::kMobileNetV2, {10.01, 93.70, 93.81}},
  };

  core::Table table({"CNN", "FP Acc[%]", "Acc before FT[%]", "after normal FT[%]",
                     "after FT w/KD[%]", "paper before", "paper normal", "paper KD"});
  for (const auto& [kind, paper] : models) {
    // Two independent workbenches so normal and KD fine-tuning both start
    // from the same calibrated FP model.
    core::Workbench wb_normal(bench::workbench_config(kind));
    const auto r_normal = wb_normal.run_quantization_stage(/*use_kd=*/false);

    core::Workbench wb_kd(bench::workbench_config(kind));
    const auto r_kd = wb_kd.run_quantization_stage(/*use_kd=*/true);

    table.add_row({core::to_string(kind), bench::pct(wb_kd.fp_accuracy()),
                   bench::pct(wb_kd.quant_acc_before_ft()), bench::pct(r_normal.final_acc),
                   bench::pct(r_kd.final_acc), core::Table::num(paper.before, 2),
                   core::Table::num(paper.normal_ft, 2), core::Table::num(paper.kd_ft, 2)});
    ctx.metric("kd_final_acc." + core::to_string(kind), r_kd.final_acc);
  }
  bench::emit_table(ctx, "table2", table);
  return 0;
}
