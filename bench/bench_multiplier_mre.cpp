// Multiplier characterisation — the MRE / savings columns of Tables III
// and V: exhaustive Eq.-14 sweep over the full 2^8 x 2^4 operand domain for
// every registry multiplier, plus bias statistics and the GE fit class.
#include "bench_common.hpp"

AXNN_BENCH_CASE(multiplier_mre, "Multiplier characterisation (Eq. 14 exhaustive sweep)") {
  using namespace axnn;

  core::Table table({"Multiplier", "MRE[%] (Eq.14)", "paper MRE[%]", "Savings[%]",
                     "mean err (bias)", "rms err", "zero-err[%]", "GE fit"});
  for (const auto& spec : axmul::paper_multipliers()) {
    const auto m = axmul::make_multiplier(spec);
    const auto stats = axmul::compute_error_stats(*m);
    const approx::SignedMulTable tab{axmul::MultiplierLut(*m)};
    const auto fit = ge::fit_multiplier_error(tab);
    table.add_row({spec.id, core::Table::num(100.0 * stats.mre, 2),
                   core::Table::num(100.0 * spec.paper_mre, 1),
                   core::Table::num(spec.energy_savings_pct, 0),
                   core::Table::num(stats.mean_error, 2), core::Table::num(stats.rms_error, 2),
                   core::Table::num(100.0 * stats.zero_error_fraction, 1),
                   fit.is_constant() ? "constant (GE=STE)"
                                     : "slope k=" + core::Table::num(fit.k, 4)});
    ctx.metric("mre." + spec.id, stats.mre);
  }
  bench::emit_table(ctx, "multiplier_mre", table);
  std::printf(
      "\nNote: truncated-multiplier Eq.-14 values are those of the faithful\n"
      "column-truncation model; the paper's published values stem from its own\n"
      "8x8->8x4 adaptation (see DESIGN.md §2). EvoApprox-like rows are calibrated\n"
      "to the published MRE by construction.\n");
  return 0;
}
