// Table I — Evaluated CNNs: #Params, #MAC ops, FP accuracy.
//
// Paper values (CIFAR10, 32x32): ResNet20 0.3M / 0.041G / 91.04%,
// ResNet32 0.5M / 0.069G / 91.88%, MobileNetV2 2.2M / 0.296G / 94.89%.
// The fast profile runs width-scaled models on the synthetic task, so the
// absolute counts shrink accordingly; relative ordering must hold.
#include "bench_common.hpp"

AXNN_BENCH_CASE(table1_models, "Table I — evaluated CNNs") {
  using namespace axnn;

  struct PaperRow {
    double params_m, gmacs, fp_acc;
  };
  const std::vector<std::pair<core::ModelKind, PaperRow>> models = {
      {core::ModelKind::kResNet20, {0.3, 0.041, 91.04}},
      {core::ModelKind::kResNet32, {0.5, 0.069, 91.88}},
      {core::ModelKind::kMobileNetV2, {2.2, 0.296, 94.89}},
  };

  core::Table table({"CNN", "#Params(x10^6)", "#MAC Ops(x10^9)", "FP Acc.[%]",
                     "paper Params", "paper MACs", "paper Acc.[%]"});
  for (const auto& [kind, paper] : models) {
    core::Workbench wb(bench::workbench_config(kind));
    const auto info = wb.info();
    table.add_row({info.name,
                   core::Table::num(1e-6 * static_cast<double>(info.parameters), 4),
                   core::Table::num(1e-9 * static_cast<double>(info.macs_per_sample), 5),
                   bench::pct(wb.fp_accuracy()),
                   core::Table::num(paper.params_m, 1),
                   core::Table::num(paper.gmacs, 3),
                   core::Table::num(paper.fp_acc, 2)});
    ctx.metric("fp_acc." + info.name, wb.fp_accuracy());
  }
  bench::emit_table(ctx, "table1", table);
  return 0;
}
