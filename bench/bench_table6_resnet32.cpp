// Table VI — retraining methods for approximate ResNet32 (same
// hyperparameters as ResNet20).
//
// Expected shape (paper): same tendency as Table V — ApproxKD+GE
// outperforms all other fine-tuning approaches.
#include <map>

#include "bench_common.hpp"

AXNN_BENCH_CASE(table6_resnet32, "Table VI — retraining methods, approximate ResNet32") {
  using namespace axnn;

  const auto profile = core::BenchProfile::from_env();
  core::Workbench wb(bench::workbench_config(core::ModelKind::kResNet32));
  const auto s1 = wb.run_quantization_stage(/*use_kd=*/true);
  std::printf("FP %.2f%% | 8A4W %.2f%% -> %.2f%% after KD quantization stage\n\n",
              100.0 * wb.fp_accuracy(), 100.0 * wb.quant_acc_before_ft(),
              100.0 * s1.final_acc);

  // Paper final accuracies [normal, approxkd+ge] (Table VI).
  const std::map<std::string, std::pair<double, double>> paper = {
      {"trunc2", {91.19, 91.29}}, {"trunc3", {90.56, 90.96}}, {"trunc4", {89.54, 90.19}},
      {"trunc5", {86.77, 88.93}}, {"evoa29", {89.73, 90.32}}, {"evoa111", {88.13, 89.05}},
      {"evoa104", {82.29, 86.11}}, {"evoa469", {81.67, 84.57}}, {"evoa228", {81.61, 84.29}},
      {"evoa145", {80.75, 84.19}},
  };

  const double reference = s1.final_acc;
  core::Table table({"Multiplier", "Initial[%]", "Normal", "GE", "alpha", "ApproxKD",
                     "ApproxKD+GE", "paper N/KD+GE"});
  for (const auto& mult : bench::table6_multipliers(profile.full)) {
    const auto row = bench::run_comparison_row(wb, mult, reference);
    ctx.report.add_event(bench::row_to_json(row));
    std::string paper_ref = "-";
    if (const auto it = paper.find(mult); it != paper.end())
      paper_ref = core::Table::num(it->second.first, 2) + "/" +
                  core::Table::num(it->second.second, 2);
    if (!row.finetuned) {
      table.add_row({row.multiplier, bench::pct(row.initial_acc), "-", "-", "-", "-", "-",
                     paper_ref});
      continue;
    }
    table.add_row({row.multiplier, bench::pct(row.initial_acc), bench::pct(row.normal),
                   row.ge_distinct ? bench::pct(row.ge) : "(=N)", bench::pct(row.alpha),
                   bench::pct(row.approxkd),
                   row.ge_distinct ? bench::pct(row.approxkd_ge) : bench::pct(row.approxkd),
                   paper_ref});
    std::printf("  %-8s done: normal %.2f | kd+ge %.2f\n", mult.c_str(), 100.0 * row.normal,
                100.0 * row.approxkd_ge);
  }
  std::printf("\n");
  ctx.metric("reference_acc", reference);
  bench::emit_table(ctx, "table6", table);
  return 0;
}
