// Extension bench (paper outlook: heterogeneous approximation) — per-layer
// execution plans on ResNet20.
//
// The paper approximates every conv/FC MAC with the same multiplier; this
// bench assigns an aggressive multiplier (trunc5) network-wide but keeps the
// most sensitive layers — the stem convolution and the classifier — on a
// gentle one (trunc2), then fine-tunes with ApproxKD+GE using a *per-layer*
// GE fit derived from each layer's actual accumulation length. Reported:
// accuracy before/after fine-tuning for the mixed plan vs both uniform
// baselines, and the network-level energy of the mix (MAC-weighted).
#include "bench_common.hpp"

AXNN_BENCH_CASE(mixed_multipliers,
                "Extension — mixed multipliers via per-layer plans (ResNet20)") {
  using namespace axnn;

  core::Workbench wb(bench::workbench_config(core::ModelKind::kResNet20));
  const auto s1 = wb.run_quantization_stage(/*use_kd=*/true);
  std::printf("FP %.2f%% | stage-1 8A4W %.2f%%\n", 100.0 * wb.fp_accuracy(),
              100.0 * s1.final_acc);

  // Discover the plan-addressable leaves; the stem conv and the classifier
  // are the first and last entries of the depth-first enumeration.
  const auto leaves = nn::enumerate_gemm_leaves(wb.model());
  const std::string& stem = leaves.front().path;
  const std::string& classifier = leaves.back().path;
  std::printf("%zu plan-addressable layers; keeping '%s' and '%s' gentle\n\n", leaves.size(),
              stem.c_str(), classifier.c_str());

  nn::NetPlan plan(nn::LayerPlan{.multiplier = "trunc5"});
  plan.set(stem, nn::LayerPlan{.multiplier = "trunc2"});
  plan.set(classifier, nn::LayerPlan{.multiplier = "trunc2"});
  std::printf("plan: %s\n", plan.to_string().c_str());

  // Zero-shot accuracies: the mix should land between the two uniforms.
  const double init_gentle = wb.approx_initial_accuracy("trunc2");
  const double init_aggr = wb.approx_initial_accuracy("trunc5");
  const double init_mixed = wb.approx_initial_accuracy(plan);
  std::printf("initial: trunc2 %.2f%% | mixed %.2f%% | trunc5 %.2f%%\n\n",
              100.0 * init_gentle, 100.0 * init_mixed, 100.0 * init_aggr);

  // Fine-tune the mixed network; GE uses one fit per distinct (multiplier,
  // dot-length) pair, so e.g. 3x3x16 and 3x3x32 convs get different slopes.
  const float t2 = bench::best_t2_for(axmul::find_spec("trunc5").value());
  const auto run = wb.run_approximation_stage(
      core::ApproxStageSetup::with_plan(plan, train::Method::kApproxKD_GE, t2));
  std::printf("mixed + ApproxKD+GE (T2=%.0f, %zu per-layer GE fits): %.2f%% -> %.2f%% "
              "(best %.2f%%)\n",
              t2, run.plan_fits, 100.0 * run.initial_acc, 100.0 * run.result.final_acc,
              100.0 * run.result.best_acc);
  const auto uniform = wb.run_approximation_stage(
      core::ApproxStageSetup::uniform("trunc5", train::Method::kApproxKD_GE, t2));
  std::printf("uniform trunc5 + ApproxKD+GE:  %.2f%% -> %.2f%%\n\n",
              100.0 * uniform.initial_acc, 100.0 * uniform.result.final_acc);

  // Energy: one single-sample forward fills every leaf's MAC counter; weight
  // each leaf's share by the multiplier its plan entry assigns.
  const auto [img, lbl] = wb.data().test.slice(0, 1);
  (void)lbl;
  (void)wb.model().forward(img, nn::ExecContext::quant_exact());
  const nn::PlanResolution res = plan.resolve(wb.model());
  std::vector<std::pair<int64_t, axmul::MultiplierSpec>> shares;
  for (const auto& e : res.entries())
    shares.emplace_back(e.layer->last_mac_count(),
                        axmul::find_spec(e.plan.multiplier).value());
  const auto mixed_e = energy::estimate_mixed(shares);
  const auto gentle_e = energy::estimate(mixed_e.macs, axmul::find_spec("trunc2").value());
  const auto aggr_e = energy::estimate(mixed_e.macs, axmul::find_spec("trunc5").value());

  core::Table table({"config", "initial[%]", "final[%]", "energy savings[%]"});
  table.add_row({"uniform trunc2", bench::pct(init_gentle), "-",
                 core::Table::num(gentle_e.savings_pct, 1)});
  table.add_row({plan.to_string(), bench::pct(run.initial_acc),
                 bench::pct(run.result.final_acc), core::Table::num(mixed_e.savings_pct, 1)});
  table.add_row({"uniform trunc5", bench::pct(uniform.initial_acc),
                 bench::pct(uniform.result.final_acc),
                 core::Table::num(aggr_e.savings_pct, 1)});
  bench::emit_table(ctx, "mixed_multipliers", table);
  ctx.metric("mixed_energy", core::to_json(mixed_e));
  ctx.metric("plan_fits", static_cast<int64_t>(run.plan_fits));
  std::printf("\nExpected shape: the mix recovers (almost) uniform-trunc2 accuracy while\n"
              "keeping most of uniform-trunc5's energy savings — the stem and classifier\n"
              "are a small fraction of the %lld MACs/sample.\n",
              static_cast<long long>(mixed_e.macs));
  return 0;
}
