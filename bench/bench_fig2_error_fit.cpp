// Fig. 2 — estimation of the accumulated approximation error of truncated
// multiplier 5: Monte-Carlo (y, eps) scatter summarised into bins, plus the
// fitted piecewise-linear function f(y) = min(a, max(k*y + c, b)).
//
// Expected shape (paper): biased error, negative slope, clamped tails.
#include "bench_common.hpp"

AXNN_BENCH_CASE(fig2_error_fit, "Fig. 2 — error estimation, truncated multiplier 5") {
  using namespace axnn;

  const approx::SignedMulTable tab(axmul::make_lut("trunc5"));
  ge::McConfig mc;  // 50 simulations, paper Sec. IV-B
  const auto samples = ge::sample_accumulated_error(tab, mc);
  const auto fit = ge::fit_piecewise_linear(samples);

  std::printf("MC samples: %zu (50 simulated convolutions)\n", samples.size());
  std::printf("fit: %s\n", fit.to_string().c_str());
  std::printf("slope k = %.5f (paper: clearly negative, biased truncation error)\n\n", fit.k);

  // Binned scatter + fit as a CSV series (plot-ready).
  constexpr int kBins = 24;
  double y_lo = samples.front().first, y_hi = y_lo;
  for (const auto& [y, e] : samples) {
    y_lo = std::min(y_lo, y);
    y_hi = std::max(y_hi, y);
  }
  std::vector<double> sum(kBins, 0.0), mn(kBins, 1e300), mx(kBins, -1e300);
  std::vector<int64_t> cnt(kBins, 0);
  for (const auto& [y, e] : samples) {
    int b = static_cast<int>((y - y_lo) / (y_hi - y_lo + 1e-9) * kBins);
    b = std::min(std::max(b, 0), kBins - 1);
    sum[static_cast<size_t>(b)] += e;
    mn[static_cast<size_t>(b)] = std::min(mn[static_cast<size_t>(b)], e);
    mx[static_cast<size_t>(b)] = std::max(mx[static_cast<size_t>(b)], e);
    ++cnt[static_cast<size_t>(b)];
  }

  core::Table table({"y_center", "mean_eps", "min_eps", "max_eps", "f(y)", "count"});
  for (int b = 0; b < kBins; ++b) {
    if (cnt[static_cast<size_t>(b)] == 0) continue;
    const double yc = y_lo + (b + 0.5) * (y_hi - y_lo) / kBins;
    table.add_row({core::Table::num(yc, 0),
                   core::Table::num(sum[static_cast<size_t>(b)] /
                                        static_cast<double>(cnt[static_cast<size_t>(b)]),
                                    1),
                   core::Table::num(mn[static_cast<size_t>(b)], 1),
                   core::Table::num(mx[static_cast<size_t>(b)], 1),
                   core::Table::num(fit.eval(yc), 1),
                   std::to_string(cnt[static_cast<size_t>(b)])});
  }
  bench::emit_table(ctx, "fig2", table);
  ctx.metric("fit", core::to_json(fit));
  ctx.metric("mc_samples", static_cast<int64_t>(samples.size()));
  std::printf("\nCSV series (for plotting):\n%s", table.to_csv().c_str());
  return 0;
}
