// Kernel microbenchmarks (google-benchmark): float GEMM, approximate LUT
// GEMM, im2col, fake-quant — the per-iteration costs behind Table IV's
// overhead numbers. GEMM benches are parameterised over the kernel backend
// (0 = naive golden reference, 1 = cache-blocked) so `--benchmark_filter`
// can compare them directly; the ResNet20 conv shape M=64, K=576, N=1024 is
// the acceptance shape for the blocked kernels.
//
// The *Telemetry variants run the same GEMMs with an obs::Collector
// attached — their delta against the base benches is the telemetry
// overhead (acceptance: <3% on the ResNet20 shapes). main() is custom
// (not BENCHMARK_MAIN): it forwards --benchmark_* flags unchanged and
// additionally writes BENCH_micro_gemm.json in the harness report shape.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "axnn/approx/kernels.hpp"
#include "axnn/axmul/registry.hpp"
#include "axnn/ge/monte_carlo.hpp"
#include "axnn/kernels/isa.hpp"
#include "axnn/kernels/plan.hpp"
#include "axnn/nn/im2col.hpp"
#include "axnn/obs/report.hpp"
#include "axnn/obs/telemetry.hpp"
#include "axnn/quant/quantizer.hpp"
#include "axnn/tensor/kernels.hpp"
#include "axnn/tensor/rng.hpp"

namespace {

using namespace axnn;

kernels::Backend backend_arg(const benchmark::State& state) {
  return state.range(0) == 0 ? kernels::Backend::kNaive : kernels::Backend::kBlocked;
}

void set_backend_label(benchmark::State& state) {
  state.SetLabel(kernels::backend_name(backend_arg(state)));
}

void BM_GemmF32(benchmark::State& state) {
  const int64_t n = state.range(1);
  Rng rng(1);
  const Tensor a = randn(Shape{n, n}, rng);
  const Tensor b = randn(Shape{n, n}, rng);
  Tensor c(Shape{n, n});
  set_backend_label(state);
  for (auto _ : state) {
    kernels::gemm({}, a.data(), b.data(), c.data(), n, n, n, backend_arg(state));
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmF32)
    ->ArgsProduct({{0, 1}, {32, 64, 128}})
    ->ArgNames({"backend", "n"});

// ResNet20 stage-3 conv as lowered by im2col: C[64,1024] = W[64,576]·X[576,1024].
void BM_GemmF32ResNet20(benchmark::State& state) {
  constexpr int64_t M = 64, K = 576, N = 1024;
  Rng rng(6);
  const Tensor a = randn(Shape{M, K}, rng);
  const Tensor b = randn(Shape{K, N}, rng);
  Tensor c(Shape{M, N});
  set_backend_label(state);
  for (auto _ : state) {
    kernels::gemm({}, a.data(), b.data(), c.data(), M, K, N, backend_arg(state));
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * M * K * N);
}
BENCHMARK(BM_GemmF32ResNet20)->Arg(0)->Arg(1)->ArgNames({"backend"});

TensorI8 random_i8(Shape shape, Rng& rng, int lo, int hi) {
  TensorI8 t(shape);
  for (int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<int8_t>(lo + rng.uniform_int(hi - lo + 1));
  return t;
}

void BM_GemmApproxLut(benchmark::State& state) {
  const int64_t n = state.range(1);
  Rng rng(2);
  const TensorI8 w = random_i8(Shape{n, n}, rng, -7, 7);
  const TensorI8 x = random_i8(Shape{n, n}, rng, -127, 127);
  TensorI32 c(Shape{n, n});
  const approx::SignedMulTable tab(axmul::make_lut("trunc5"));
  set_backend_label(state);
  for (auto _ : state) {
    kernels::gemm_approx({}, w.data(), x.data(), c.data(), n, n, n, tab,
                         backend_arg(state));
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmApproxLut)
    ->ArgsProduct({{0, 1}, {32, 64, 128}})
    ->ArgNames({"backend", "n"});

// Acceptance shape for the blocked approximate kernel: ResNet20 conv GEMM.
void BM_GemmApproxLutResNet20(benchmark::State& state) {
  constexpr int64_t M = 64, K = 576, N = 1024;
  Rng rng(7);
  const TensorI8 w = random_i8(Shape{M, K}, rng, -7, 7);
  const TensorI8 x = random_i8(Shape{K, N}, rng, -127, 127);
  TensorI32 c(Shape{M, N});
  const approx::SignedMulTable tab(axmul::make_lut("trunc5"));
  set_backend_label(state);
  for (auto _ : state) {
    kernels::gemm_approx({}, w.data(), x.data(), c.data(), M, K, N, tab,
                         backend_arg(state));
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * M * K * N);
}
BENCHMARK(BM_GemmApproxLutResNet20)->Arg(0)->Arg(1)->ArgNames({"backend"});

// Plan lifecycle on the acceptance shape. ColdPlan clears the global cache
// every iteration, so each run pays the full acquire: key fingerprinting,
// LUT re-layout into nibble slices + transposed lines, tile derivation.
// WarmPlan holds the handle and only executes. The delta is exactly what
// Engine::load's pre-warm removes from the serving steady state.
void BM_GemmApproxLutResNet20ColdPlan(benchmark::State& state) {
  constexpr int64_t M = 64, K = 576, N = 1024;
  Rng rng(7);
  const TensorI8 w = random_i8(Shape{M, K}, rng, -7, 7);
  const TensorI8 x = random_i8(Shape{K, N}, rng, -127, 127);
  TensorI32 c(Shape{M, N});
  const approx::SignedMulTable tab(axmul::make_lut("trunc5"));
  const kernels::PlanKey key = kernels::make_int_key(
      kernels::OpKind::kApprox, {}, M, K, N, kernels::Backend::kBlocked, &tab);
  for (auto _ : state) {
    kernels::PlanCache::global().clear();
    const kernels::PlanHandle plan = kernels::PlanCache::global().acquire(key, &tab);
    plan->run_int(w.data(), x.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * M * K * N);
}
BENCHMARK(BM_GemmApproxLutResNet20ColdPlan);

void BM_GemmApproxLutResNet20WarmPlan(benchmark::State& state) {
  constexpr int64_t M = 64, K = 576, N = 1024;
  Rng rng(7);
  const TensorI8 w = random_i8(Shape{M, K}, rng, -7, 7);
  const TensorI8 x = random_i8(Shape{K, N}, rng, -127, 127);
  TensorI32 c(Shape{M, N});
  const approx::SignedMulTable tab(axmul::make_lut("trunc5"));
  const kernels::PlanKey key = kernels::make_int_key(
      kernels::OpKind::kApprox, {}, M, K, N, kernels::Backend::kBlocked, &tab);
  const kernels::PlanHandle plan = kernels::PlanCache::global().acquire(key, &tab);
  for (auto _ : state) {
    plan->run_int(w.data(), x.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * M * K * N);
}
BENCHMARK(BM_GemmApproxLutResNet20WarmPlan);

void BM_GemmExactI32(benchmark::State& state) {
  const int64_t n = state.range(1);
  Rng rng(3);
  const TensorI8 w = random_i8(Shape{n, n}, rng, -7, 7);
  const TensorI8 x = random_i8(Shape{n, n}, rng, -127, 127);
  TensorI32 c(Shape{n, n});
  set_backend_label(state);
  for (auto _ : state) {
    kernels::gemm_exact({}, w.data(), x.data(), c.data(), n, n, n,
                        backend_arg(state));
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmExactI32)
    ->ArgsProduct({{0, 1}, {32, 64, 128}})
    ->ArgNames({"backend", "n"});

void BM_Im2col(benchmark::State& state) {
  const int64_t hw = state.range(0);
  Rng rng(4);
  const Tensor x = randn(Shape{8, 16, hw, hw}, rng);
  const nn::ConvGeom g = nn::ConvGeom::of(x.shape(), 3, 1, 1);
  for (auto _ : state) {
    Tensor cols = nn::im2col(x, g);
    benchmark::DoNotOptimize(cols.data());
  }
  state.SetItemsProcessed(state.iterations() * g.patch_rows() * g.out_cols());
}
BENCHMARK(BM_Im2col)->Arg(8)->Arg(16);

void BM_FakeQuantize(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(5);
  const Tensor x = randn(Shape{n}, rng);
  const quant::QuantParams p = quant::params_for_max_abs(3.0f, 8);
  for (auto _ : state) {
    Tensor q = quant::fake_quantize(x, p);
    benchmark::DoNotOptimize(q.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FakeQuantize)->Arg(1 << 14)->Arg(1 << 18);

void BM_LutCompile(benchmark::State& state) {
  for (auto _ : state) {
    const approx::SignedMulTable tab(axmul::make_lut("trunc5"));
    benchmark::DoNotOptimize(tab.data());
  }
}
BENCHMARK(BM_LutCompile);

void BM_ErrorFitMonteCarlo(benchmark::State& state) {
  // The "<1 second" claim of paper Sec. IV-B for 50 MC simulations.
  const approx::SignedMulTable tab(axmul::make_lut("trunc5"));
  for (auto _ : state) {
    const auto fit = ge::fit_multiplier_error(tab);
    benchmark::DoNotOptimize(fit.k);
  }
}
BENCHMARK(BM_ErrorFitMonteCarlo);

// Telemetry overhead on the acceptance shapes: identical GEMM loops with a
// collector attached, so record_gemm (and its timing clock) is live.
// Compare against the base ResNet20 benches; acceptance is <3% delta.
void BM_GemmF32ResNet20Telemetry(benchmark::State& state) {
  constexpr int64_t M = 64, K = 576, N = 1024;
  Rng rng(6);
  const Tensor a = randn(Shape{M, K}, rng);
  const Tensor b = randn(Shape{K, N}, rng);
  Tensor c(Shape{M, N});
  obs::Collector collector({.timing = true});
  obs::ScopedCollector attach(collector);
  set_backend_label(state);
  for (auto _ : state) {
    kernels::gemm({}, a.data(), b.data(), c.data(), M, K, N, backend_arg(state));
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * M * K * N);
}
BENCHMARK(BM_GemmF32ResNet20Telemetry)->Arg(0)->Arg(1)->ArgNames({"backend"});

void BM_GemmApproxLutResNet20Telemetry(benchmark::State& state) {
  constexpr int64_t M = 64, K = 576, N = 1024;
  Rng rng(7);
  const TensorI8 w = random_i8(Shape{M, K}, rng, -7, 7);
  const TensorI8 x = random_i8(Shape{K, N}, rng, -127, 127);
  TensorI32 c(Shape{M, N});
  const approx::SignedMulTable tab(axmul::make_lut("trunc5"));
  obs::Collector collector({.timing = true});
  obs::ScopedCollector attach(collector);
  set_backend_label(state);
  for (auto _ : state) {
    kernels::gemm_approx({}, w.data(), x.data(), c.data(), M, K, N, tab,
                         backend_arg(state));
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * M * K * N);
}
BENCHMARK(BM_GemmApproxLutResNet20Telemetry)->Arg(0)->Arg(1)->ArgNames({"backend"});

/// Console output as usual, plus every finished run captured as one event
/// in the harness report.
class CaptureReporter : public benchmark::ConsoleReporter {
public:
  explicit CaptureReporter(obs::RunReport& report) : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& r : runs) {
      if (r.error_occurred) continue;
      obs::Json ev = obs::Json::object();
      ev["type"] = "benchmark";
      ev["name"] = r.benchmark_name();
      ev["iterations"] = static_cast<int64_t>(r.iterations);
      ev["real_time_ns"] = r.GetAdjustedRealTime();
      ev["cpu_time_ns"] = r.GetAdjustedCPUTime();
      report_.metric(r.benchmark_name(), r.GetAdjustedRealTime());
      report_.add_event(std::move(ev));
    }
  }

private:
  obs::RunReport& report_;
};

/// CI gate: the vectorized blocked int kernels must be bit-identical to the
/// naive golden reference. Checked on the acceptance shape plus odd shapes
/// that stress remainder handling, for both the LUT and exact paths.
/// Returns false (and prints the first mismatch) on divergence.
bool verify_simd_bit_identity() {
  const approx::SignedMulTable tab(axmul::make_lut("trunc5"));
  const struct {
    int64_t m, k, n;
  } shapes[] = {{64, 576, 1024}, {7, 13, 17}, {1, 576, 1024}, {33, 65, 31}};
  Rng rng(11);
  for (const auto& s : shapes) {
    const TensorI8 w = random_i8(Shape{s.m, s.k}, rng, -7, 7);
    const TensorI8 x = random_i8(Shape{s.k, s.n}, rng, -127, 127);
    TensorI32 naive(Shape{s.m, s.n}), blocked(Shape{s.m, s.n});
    for (const bool approx_path : {true, false}) {
      if (approx_path) {
        kernels::gemm_approx({}, w.data(), x.data(), naive.data(), s.m, s.k, s.n, tab,
                             kernels::Backend::kNaive);
        kernels::gemm_approx({}, w.data(), x.data(), blocked.data(), s.m, s.k, s.n, tab,
                             kernels::Backend::kBlocked);
      } else {
        kernels::gemm_exact({}, w.data(), x.data(), naive.data(), s.m, s.k, s.n,
                            kernels::Backend::kNaive);
        kernels::gemm_exact({}, w.data(), x.data(), blocked.data(), s.m, s.k, s.n,
                            kernels::Backend::kBlocked);
      }
      for (int64_t i = 0; i < naive.numel(); ++i) {
        if (naive[i] != blocked[i]) {
          std::fprintf(stderr,
                       "SIMD divergence: %s [%lldx%lldx%lld] isa=%s elem %lld: "
                       "naive=%d blocked=%d\n",
                       approx_path ? "approx" : "exact", static_cast<long long>(s.m),
                       static_cast<long long>(s.k), static_cast<long long>(s.n),
                       kernels::isa_name(kernels::active_isa()), static_cast<long long>(i),
                       naive[i], blocked[i]);
          return false;
        }
      }
    }
  }
  return true;
}

/// Median wall time of `reps` runs of fn().
double median_ms(int reps, void (*fn)(const void*), const void* ctx) {
  std::vector<double> ms;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn(ctx);
    const auto t1 = std::chrono::steady_clock::now();
    ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  std::sort(ms.begin(), ms.end());
  return ms[ms.size() / 2];
}

/// Headline summary metrics: blocked-vs-naive speedup on the acceptance
/// shape (ISSUE acceptance: >= 4x) and the plan-cache hit rate accumulated
/// over the whole benchmark run.
void add_summary_metrics(obs::RunReport& report) {
  constexpr int64_t M = 64, K = 576, N = 1024;
  Rng rng(13);
  const TensorI8 w = random_i8(Shape{M, K}, rng, -7, 7);
  const TensorI8 x = random_i8(Shape{K, N}, rng, -127, 127);
  TensorI32 c(Shape{M, N});
  const approx::SignedMulTable tab(axmul::make_lut("trunc5"));

  struct Ctx {
    const TensorI8 *w, *x;
    TensorI32* c;
    const approx::SignedMulTable* tab;
    kernels::Backend be;
  };
  const auto run = +[](const void* p) {
    const Ctx& g = *static_cast<const Ctx*>(p);
    kernels::gemm_approx({}, g.w->data(), g.x->data(), g.c->data(), M, K, N, *g.tab, g.be);
  };
  Ctx naive{&w, &x, &c, &tab, kernels::Backend::kNaive};
  Ctx blocked{&w, &x, &c, &tab, kernels::Backend::kBlocked};
  run(&blocked);  // warm the plan before timing
  // Stats boundary: from here on every blocked run must hit the cache, so
  // the reported hit rate is the steady state (the ColdPlan bench above
  // deliberately cleared the cache over and over).
  kernels::PlanCache::global().reset_stats();
  const double naive_ms = median_ms(3, run, &naive);
  const double blocked_ms = median_ms(5, run, &blocked);
  const double speedup = blocked_ms > 0.0 ? naive_ms / blocked_ms : 0.0;

  const kernels::PlanCacheStats ps = kernels::PlanCache::global().stats();
  report.metric("isa", std::string(kernels::isa_name(kernels::active_isa())));
  report.metric("approx_resnet20_naive_ms", naive_ms);
  report.metric("approx_resnet20_blocked_ms", blocked_ms);
  report.metric("approx_resnet20_simd_speedup", speedup);
  report.metric("plan_cache_hit_rate", ps.hit_rate());
  report.metric("plan_cache_size", static_cast<double>(ps.size));
  std::printf("simd speedup (approx ResNet20 shape): %.2fx (%.2f ms -> %.2f ms), "
              "plan cache hit rate %.3f\n",
              speedup, naive_ms, blocked_ms, ps.hit_rate());
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  obs::RunReport report("micro_gemm", "Kernel microbenchmarks (google-benchmark)");
  CaptureReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  // Bit-identity gate before the report is written: CI treats a nonzero exit
  // as a failed job, so a diverging vector kernel can never ship a report.
  const bool identical = verify_simd_bit_identity();
  report.metric("simd_bit_identical", identical ? 1.0 : 0.0);
  add_summary_metrics(report);

  report.write("BENCH_micro_gemm.json");
  report.write_jsonl("BENCH_micro_gemm.jsonl");
  std::printf("report: BENCH_micro_gemm.json\n");
  if (!identical) {
    std::fprintf(stderr, "FAIL: blocked int kernels diverge from the naive reference\n");
    return 2;
  }
  return 0;
}
