// Kernel microbenchmarks (google-benchmark): float GEMM, approximate LUT
// GEMM, im2col, fake-quant — the per-iteration costs behind Table IV's
// overhead numbers.
#include <benchmark/benchmark.h>

#include "axnn/approx/approx_gemm.hpp"
#include "axnn/axmul/registry.hpp"
#include "axnn/ge/monte_carlo.hpp"
#include "axnn/nn/im2col.hpp"
#include "axnn/quant/quantizer.hpp"
#include "axnn/tensor/gemm.hpp"
#include "axnn/tensor/rng.hpp"

namespace {

using namespace axnn;

void BM_GemmF32(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  const Tensor a = randn(Shape{n, n}, rng);
  const Tensor b = randn(Shape{n, n}, rng);
  Tensor c(Shape{n, n});
  for (auto _ : state) {
    gemm_f32(a.data(), b.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmF32)->Arg(32)->Arg(64)->Arg(128);

TensorI8 random_i8(Shape shape, Rng& rng, int lo, int hi) {
  TensorI8 t(shape);
  for (int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<int8_t>(lo + rng.uniform_int(hi - lo + 1));
  return t;
}

void BM_GemmApproxLut(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(2);
  const TensorI8 w = random_i8(Shape{n, n}, rng, -7, 7);
  const TensorI8 x = random_i8(Shape{n, n}, rng, -127, 127);
  TensorI32 c(Shape{n, n});
  const approx::SignedMulTable tab(axmul::make_lut("trunc5"));
  for (auto _ : state) {
    approx::gemm_approx_i32(w.data(), x.data(), c.data(), n, n, n, tab);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmApproxLut)->Arg(32)->Arg(64)->Arg(128);

void BM_GemmExactI32(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(3);
  const TensorI8 w = random_i8(Shape{n, n}, rng, -7, 7);
  const TensorI8 x = random_i8(Shape{n, n}, rng, -127, 127);
  TensorI32 c(Shape{n, n});
  for (auto _ : state) {
    approx::gemm_exact_i32(w.data(), x.data(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmExactI32)->Arg(32)->Arg(64)->Arg(128);

void BM_Im2col(benchmark::State& state) {
  const int64_t hw = state.range(0);
  Rng rng(4);
  const Tensor x = randn(Shape{8, 16, hw, hw}, rng);
  const nn::ConvGeom g = nn::ConvGeom::of(x.shape(), 3, 1, 1);
  for (auto _ : state) {
    Tensor cols = nn::im2col(x, g);
    benchmark::DoNotOptimize(cols.data());
  }
  state.SetItemsProcessed(state.iterations() * g.patch_rows() * g.out_cols());
}
BENCHMARK(BM_Im2col)->Arg(8)->Arg(16);

void BM_FakeQuantize(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(5);
  const Tensor x = randn(Shape{n}, rng);
  const quant::QuantParams p = quant::params_for_max_abs(3.0f, 8);
  for (auto _ : state) {
    Tensor q = quant::fake_quantize(x, p);
    benchmark::DoNotOptimize(q.data());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FakeQuantize)->Arg(1 << 14)->Arg(1 << 18);

void BM_LutCompile(benchmark::State& state) {
  for (auto _ : state) {
    const approx::SignedMulTable tab(axmul::make_lut("trunc5"));
    benchmark::DoNotOptimize(tab.data());
  }
}
BENCHMARK(BM_LutCompile);

void BM_ErrorFitMonteCarlo(benchmark::State& state) {
  // The "<1 second" claim of paper Sec. IV-B for 50 MC simulations.
  const approx::SignedMulTable tab(axmul::make_lut("trunc5"));
  for (auto _ : state) {
    const auto fit = ge::fit_multiplier_error(tab);
    benchmark::DoNotOptimize(fit.k);
  }
}
BENCHMARK(BM_ErrorFitMonteCarlo);

}  // namespace

BENCHMARK_MAIN();
