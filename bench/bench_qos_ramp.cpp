// QoS governor under pressure: shed accuracy, not latency (DESIGN.md §5h).
//
// Brings up a trunc5-fine-tuned ResNet-20 behind a three-point operating
// ladder over one weight set:
//
//   0 accurate    default=trunc5                 (best accuracy, LUT path)
//   1 balanced    half the leaves mode=exact     (middle ground)
//   2 throughput  default=trunc5:mode=exact      (~3x faster integer kernels,
//                                                 accuracy pays for it)
//
// and demonstrates the two acceptance scenarios:
//
//   * Load ramp — an open-loop Poisson arrival rate deliberately above the
//     accurate point's capacity. The governor must step the session down
//     (kLoad), the saturated segment's p95 must stay under the deployment
//     deadline (ungoverned it would grow with the queue, unboundedly), and
//     once the ramp ends the session must recover to point 0 (kRecovery).
//     The accuracy cost is the *designed* ladder margin, not collapse to
//     noise — asserted on the measured per-point holdout metadata.
//   * Fault-then-recover — exponent bit flips planted in the served conv/FC
//     weights (bench_sentinel_coverage's weight-fault machinery). The
//     sentinel repairs every violated GEMM from golden state, so requests
//     keep succeeding; the governor sees the violation rate and steps down
//     (kHealth). Restoring the weights calms the signal and the session
//     recovers to point 0. Zero failed requests throughout.
#include <chrono>
#include <thread>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace axnn;

// The ladder over the model's own leaf paths. Exact-mode share is the
// latency axis for a trunc5-fine-tuned model: the integer kernel is ~3x
// faster than the LUT walk, and the fine-tuned weights lose accuracy under
// exact arithmetic (DESIGN.md §5h) — faster AND worse, exactly what a
// load-shedding ladder wants.
std::string build_ladder(const core::BenchProfile& profile) {
  auto probe = models::make_resnet20(profile.resnet_width);
  const auto leaves = nn::enumerate_gemm_leaves(*probe);
  std::string balanced = "default=trunc5";
  for (size_t i = 0; i < leaves.size(); i += 2)
    balanced += "; " + leaves[i].path + "=trunc5:mode=exact";
  return qos::to_text({{"accurate", "default=trunc5"},
                       {"balanced", balanced},
                       {"throughput", "default=trunc5:mode=exact"}});
}

core::Table transition_table(serve::Session& session) {
  const std::vector<qos::Transition> log = session.transitions();
  core::Table tt({"t [ms]", "from", "to", "cause", "detail"});
  const int64_t t0 = log.empty() ? 0 : log.front().t_ns;
  for (const auto& t : log)
    tt.add_row({core::Table::num(static_cast<double>(t.t_ns - t0) / 1e6, 0),
                session.point_name(t.from), session.point_name(t.to), qos::to_string(t.cause),
                t.detail});
  return tt;
}

/// Failure path: surface what the governor saw before bailing.
int fail(obs::bench::BenchContext& ctx, serve::Session& session, const char* msg) {
  std::printf("FAIL: %s\n", msg);
  std::printf("sentinel: %s\n", session.sentinel_report().summary().c_str());
  std::printf("-- governor transitions at failure --\n");
  bench::emit_table(ctx, "qos_transitions", transition_table(session));
  return 1;
}

bool has_step(const std::vector<qos::Transition>& ts, qos::Cause cause, bool down) {
  for (const auto& t : ts)
    if (t.cause == cause && (down ? t.to > t.from : t.to < t.from)) return true;
  return false;
}

/// Poll until the governed session sits at `target` (idle governor ticks
/// drive recovery without traffic).
bool wait_for_point(serve::Session& s, int target, int timeout_ms) {
  const auto until = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < until) {
    if (s.active_point() == target) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return s.active_point() == target;
}

}  // namespace

AXNN_BENCH_CASE(qos_ramp, "QoS governor: degrade accuracy, not latency, under load and faults") {
  serve::ModelSpec spec;
  spec.model = core::ModelKind::kResNet20;
  spec.profile = core::BenchProfile::from_env();
  // Fine-tune under trunc5 so the ladder's accuracy spread is real: the
  // adapted weights score high on the LUT path and measurably lower under
  // exact arithmetic.
  spec.finetune = true;
  spec.method = train::Method::kNormal;
  spec.t2 = bench::best_t2_for(axmul::find_spec("trunc5").value());
  spec.qos_points = build_ladder(spec.profile);
  spec.sentinel = true;
  // Never degrade leaves permanently: repairs keep requests correct while
  // the violation *rate* keeps firing until the weights are restored — the
  // sustained health signal the governor acts on.
  spec.sentinel_config.policy.degrade_after = 1'000'000;
  // The range guard checks the whole batched activation, so one extreme
  // sample trips the check for all of them — at max_batch=8 that false
  // positives at a few percent per check on clean traffic, enough to fake
  // a health signal. ABFT + weight checksums (which detect the planted
  // faults below) are exact-zero-FP here; run on those alone.
  spec.sentinel_config.range_guard = false;
  spec.governor.tick_interval_ms = 10;
  spec.governor.dwell_ms = 150;
  spec.governor.recover_ms = 2000;
  spec.governor.queue_high = 24;
  spec.governor.react_to_backpressure = true;
  spec.governor.violation_rate_high = 0.02;
  spec.batching.max_batch = 8;
  spec.batching.max_delay_us = 2000;
  spec.batching.queue_capacity = 64;

  auto engine = serve::Engine::load(spec);
  serve::Session& session = engine->session();
  const data::Dataset& pool = engine->data().test;
  const auto& points = engine->operating_points();

  core::Table pt({"#", "point", "holdout acc[%]", "energy/req", "lat est[ms]"});
  for (size_t i = 0; i < points.size(); ++i)
    pt.add_row({core::Table::num(static_cast<double>(i), 0), points[i].name,
                bench::pct(points[i].holdout_acc), core::Table::num(points[i].energy_per_req, 0),
                core::Table::num(points[i].latency_est_ms, 2)});
  std::printf("-- operating points --\n");
  bench::emit_table(ctx, "qos_points", pt);

  const double acc0 = points.front().holdout_acc;
  const double acc_floor = points.back().holdout_acc;
  const double lat0 = points.front().latency_est_ms;
  const double lat_floor = points.back().latency_est_ms;
  ctx.metric("acc_point0", acc0);
  ctx.metric("acc_floor", acc_floor);
  ctx.metric("lat_point0_ms", lat0);
  ctx.metric("lat_floor_ms", lat_floor);

  // The ladder must actually trade accuracy for latency: the floor is
  // faster, cheaper on accuracy by a designed margin, and still far from
  // the 10% random-guess noise floor.
  if (lat_floor >= lat0) {
    std::printf("FAIL: ladder floor is not faster (%.2fms vs %.2fms)\n", lat_floor, lat0);
    return 1;
  }
  if (acc0 - acc_floor < 0.05) {
    std::printf("FAIL: ladder sheds no meaningful accuracy (%.3f vs %.3f)\n", acc0, acc_floor);
    return 1;
  }
  if (acc_floor < 0.15) {
    std::printf("FAIL: floor accuracy %.3f is at the noise floor\n", acc_floor);
    return 1;
  }

  // -- Phase A: load ramp. --
  // Point 0's real capacity on this machine: a short closed-loop segment
  // measures achieved throughput including batching, dispatch and the load
  // generator's own CPU share. (The metadata latency estimate is a bare
  // per-lane forward — far too optimistic to derive arrival rates from.)
  // Closed loop keeps queue depth <= clients, so the governor holds.
  serve::LoadSpec probe;
  probe.arrival = serve::Arrival::kClosed;
  probe.clients = 4;
  probe.requests = 192;
  probe.seed = 11;
  const serve::LoadReport rp = serve::run_load(*engine, session, pool, probe);
  const double cap0_rps = rp.throughput_rps;
  std::printf("probe: %.1f rps closed-loop capacity, active=%s\n", cap0_rps,
              session.point_name(session.active_point()).c_str());
  ctx.metric("cap0_rps", cap0_rps);
  if (session.active_point() != 0)
    return fail(ctx, session, "closed-loop probe pushed the session off point 0");

  // Warm segment well inside point 0's capacity: the governor must hold.
  serve::LoadSpec warm;
  warm.arrival = serve::Arrival::kPoisson;
  warm.rate_rps = std::max(5.0, 0.25 * cap0_rps);
  warm.requests = static_cast<int>(std::max(32.0, std::min(256.0, 1.2 * warm.rate_rps)));
  warm.seed = 17;
  const serve::LoadReport rw = serve::run_load(*engine, session, pool, warm);
  std::printf("warm:  %.1f rps offered, p95 %.2fms, active=%s\n", warm.rate_rps, rw.latency.p95,
              session.point_name(session.active_point()).c_str());
  if (session.active_point() != 0)
    return fail(ctx, session, "warm traffic pushed the session off point 0");

  // Saturating segment: offered load halfway between point 0's measured
  // capacity and the floor's estimated one (per the latency-estimate
  // ratio) — overloads the accurate point, absorbable once the governor
  // steps down. Two sub-segments: a short *trigger* that must produce the
  // kLoad step-down, then — after a drain, so the trigger backlog does not
  // leak into the intended-arrival accounting — a *sustained* segment at
  // the same rate whose steady-state p95 must hold the deployment SLO
  // (100 mean point-0 service times). Ungoverned, this rate accrues
  // queueing delay linearly for the whole segment and blows far past it.
  const double floor_ratio = lat0 / lat_floor;
  const double deadline_ms = 100.0 * (1000.0 / cap0_rps);
  serve::LoadSpec sat;
  sat.arrival = serve::Arrival::kPoisson;
  sat.rate_rps = cap0_rps * (1.0 + 0.5 * (floor_ratio - 1.0));
  sat.requests = static_cast<int>(std::max(256.0, std::min(1024.0, 1.5 * sat.rate_rps)));
  sat.seed = 29;
  const serve::LoadReport rs = serve::run_load(*engine, session, pool, sat);
  const int sat_point = session.active_point();
  std::printf("ramp:  %.1f rps offered (cap0 %.1f), p95 %.2fms, active=%s\n", sat.rate_rps,
              cap0_rps, rs.latency.p95, session.point_name(sat_point).c_str());
  ctx.metric("sat_rate_rps", sat.rate_rps);
  ctx.metric("sat_active_point", sat_point);
  if (sat_point == 0 || !has_step(session.transitions(), qos::Cause::kLoad, /*down=*/true))
    return fail(ctx, session, "saturating load produced no kLoad step-down");

  engine->drain();
  serve::LoadSpec sustain = sat;
  sustain.requests = static_cast<int>(std::max(512.0, std::min(2048.0, 3.0 * sat.rate_rps)));
  sustain.seed = 31;
  const serve::LoadReport rh = serve::run_load(*engine, session, pool, sustain);
  std::printf("hold:  p95 %.2fms (deadline %.2fms), active=%s\n", rh.latency.p95, deadline_ms,
              session.point_name(session.active_point()).c_str());
  ctx.metric("sustain_p95_ms", rh.latency.p95);
  ctx.metric("deadline_ms", deadline_ms);
  if (rh.latency.p95 >= deadline_ms) {
    std::printf("governed p95 %.2fms vs %.2fms deadline\n", rh.latency.p95, deadline_ms);
    return fail(ctx, session, "governed p95 missed the deadline");
  }

  // Ramp over: idle governor ticks must walk the session back to point 0.
  const bool recovered = wait_for_point(session, 0, 15000);
  std::printf("calm:  active=%s after ramp\n",
              session.point_name(session.active_point()).c_str());
  if (!recovered || !has_step(session.transitions(), qos::Cause::kRecovery, /*down=*/false))
    return fail(ctx, session, "session did not recover to point 0 after the ramp");
  ctx.metric("load_recovered", 1.0);

  // -- Phase B: fault, serve through it, recover. --
  // Snapshot the served weights, then plant exponent bit flips exactly as
  // bench_sentinel_coverage does. Golden-checksum repairs keep every
  // response correct; the violation rate is the governor's health signal.
  engine->drain();
  std::vector<Tensor*> weights;
  for (const auto& leaf : nn::enumerate_gemm_leaves(engine->model(0))) {
    if (auto* c = dynamic_cast<nn::Conv2d*>(leaf.layer)) weights.push_back(&c->weight().value);
    if (auto* l = dynamic_cast<nn::Linear*>(leaf.layer)) weights.push_back(&l->weight().value);
  }
  std::vector<Tensor> golden;
  golden.reserve(weights.size());
  for (const Tensor* w : weights) golden.push_back(*w);
  resilience::FaultSpec fs;
  fs.rate = 1e-2;
  fs.bit_lo = 23;  // exponent flips: large magnitude errors, still finite
  fs.bit_hi = 30;
  fs.seed = 7;
  resilience::corrupt_tensors(weights, resilience::FaultInjector(fs));

  serve::LoadSpec fault;
  fault.arrival = serve::Arrival::kPoisson;
  fault.rate_rps = std::max(5.0, 0.3 * cap0_rps);
  fault.requests = static_cast<int>(std::max(96.0, std::min(512.0, 2.0 * fault.rate_rps)));
  fault.seed = 43;
  const serve::LoadReport rf = serve::run_load(*engine, session, pool, fault);
  const int fault_point = session.active_point();
  const sentinel::SentinelReport srep = session.sentinel_report();
  std::printf("fault: %lld/%d requests served, active=%s, sentinel: %s\n",
              static_cast<long long>(rf.requests), fault.requests,
              session.point_name(fault_point).c_str(), srep.summary().c_str());
  ctx.metric("fault_requests", rf.requests);
  ctx.metric("fault_violations", srep.total_violations());
  ctx.metric("fault_active_point", fault_point);
  if (rf.requests != fault.requests) {
    std::printf("served %lld of %d requests\n", static_cast<long long>(rf.requests),
                fault.requests);
    return fail(ctx, session, "requests failed under faults");
  }
  if (fault_point == 0 || !has_step(session.transitions(), qos::Cause::kHealth, /*down=*/true))
    return fail(ctx, session, "weight faults produced no kHealth step-down");

  // Repair the deployment: restore the golden weights. Violations stop, the
  // calm window fills, the governor steps back up.
  engine->drain();
  for (size_t i = 0; i < weights.size(); ++i) *weights[i] = golden[i];
  const bool healed = wait_for_point(session, 0, 15000);
  std::printf("heal:  active=%s after weight restore\n",
              session.point_name(session.active_point()).c_str());
  if (!healed)
    return fail(ctx, session, "session did not recover to point 0 after the repair");
  ctx.metric("fault_recovered", 1.0);

  // Transition log + structured qos section.
  std::printf("\n-- governor transitions --\n");
  bench::emit_table(ctx, "qos_transitions", transition_table(session));
  ctx.report.set("qos", engine->qos_report().to_json());

  const serve::EngineStats stats = engine->stats();
  ctx.metric("qos_transitions", stats.qos_transitions);
  ctx.metric("total_requests", stats.requests);
  return 0;
}
