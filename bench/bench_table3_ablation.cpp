// Table III — ApproxKD temperature ablation on ResNet20.
//
// For each multiplier, fine-tune the approximate model with ApproxKD at
// T2 in {1, 2, 5, 10} and report the worst/best temperature and final
// accuracy. Paper finding: multipliers with small MRE prefer low T2;
// multipliers with MRE > ~18% prefer T2 = 10, with a >4% best-worst gap.
#include <limits>

#include "bench_common.hpp"

AXNN_BENCH_CASE(table3_ablation, "Table III — ApproxKD temperature ablation (ResNet20)") {
  using namespace axnn;

  const auto profile = core::BenchProfile::from_env();
  core::Workbench wb(bench::workbench_config(core::ModelKind::kResNet20));
  (void)wb.run_quantization_stage(/*use_kd=*/true);

  const std::vector<float> temps = {1.0f, 2.0f, 5.0f, 10.0f};

  core::Table table({"Multiplier", "MRE[%]", "Savings[%]", "worst T", "best T",
                     "Initial Acc[%]", "worst Final[%]", "best Final[%]"});
  for (const auto& mult : bench::table3_multipliers(profile.full)) {
    const auto spec = axmul::find_spec(mult).value();
    const auto stats = axmul::compute_error_stats(*axmul::make_multiplier(spec));

    double initial = 0.0;
    double best_acc = -1.0, worst_acc = std::numeric_limits<double>::infinity();
    float best_t = 0.0f, worst_t = 0.0f;
    for (const float t2 : temps) {
      auto setup = core::ApproxStageSetup::uniform(mult, train::Method::kApproxKD, t2);
      setup.finetune = wb.default_ft_config();
      setup.finetune->epochs = profile.ablation_epochs;
      const auto run = wb.run_approximation_stage(setup);
      initial = run.initial_acc;
      if (run.result.final_acc > best_acc) {
        best_acc = run.result.final_acc;
        best_t = t2;
      }
      if (run.result.final_acc < worst_acc) {
        worst_acc = run.result.final_acc;
        worst_t = t2;
      }
      std::printf("  %-8s T2=%-4.0f -> final %.2f%%\n", mult.c_str(), t2,
                  100.0 * run.result.final_acc);
    }
    table.add_row({mult, core::Table::num(100.0 * stats.mre, 1),
                   core::Table::num(spec.energy_savings_pct, 0),
                   core::Table::num(worst_t, 0), core::Table::num(best_t, 0),
                   bench::pct(initial), bench::pct(worst_acc), bench::pct(best_acc)});
  }
  std::printf("\n");
  bench::emit_table(ctx, "table3", table);
  std::printf("\nPaper (Table III, 60 epochs, real CIFAR10): trunc3 best T=2, trunc5 best T=5,\n"
              "EvoApprox MRE>18%% best T=10 with >4%% best-worst gap; small-MRE multipliers\n"
              "prefer low temperatures.\n");
  return 0;
}
