// Plan-search bench (DESIGN.md §5j) — automated per-layer multiplier search
// on ResNet20.
//
// Runs search::run_search against the stage-1 workbench and checks the two
// acceptance properties end to end: (1) every uniform single-multiplier
// baseline (the configurations bench_mixed_multipliers compares by hand) is
// weakly dominated by some point of the emitted Pareto front — the bench
// FAILS (nonzero exit) on any violation; (2) the emitted ladder is servable
// as-is: it re-parses through qos::parse_points and boots a serve::Engine,
// exactly what `axnn_cli serve --qos <file>` does. The full SearchResult
// lands in the report under "search" (definitions.searchReport in
// schemas/bench_report.schema.json).
#include "bench_common.hpp"

AXNN_BENCH_CASE(plan_search,
                "Extension — automated per-layer plan search (ResNet20)") {
  using namespace axnn;

  core::Workbench wb(bench::workbench_config(core::ModelKind::kResNet20));
  const auto s1 = wb.run_quantization_stage(/*use_kd=*/true);
  std::printf("FP %.2f%% | stage-1 8A4W %.2f%%\n", 100.0 * wb.fp_accuracy(),
              100.0 * s1.final_acc);

  search::SearchSpec spec;
  spec.multipliers = {"trunc2", "trunc3", "trunc4", "trunc5"};
  spec.budget_evals = core::BenchProfile::from_env().full ? 64 : 24;
  spec.evolution_generations = 2;
  spec.seed = 7;
  const search::SearchResult result = search::run_search(wb, spec);
  std::printf("search: %d holdout evals, exact baseline %.2f%% at %.0f units/sample\n\n",
              result.evals_used, 100.0 * result.baseline_acc, result.exact_energy);

  core::Table table({"config", "holdout[%]", "energy[units]", "savings[%]"});
  for (const auto& p : result.front)
    table.add_row({p.name, bench::pct(p.holdout_acc),
                   core::Table::num(p.energy_per_sample, 0),
                   core::Table::num(p.energy_savings_pct, 1)});
  for (const auto& p : result.uniform_baselines)
    table.add_row({p.name, bench::pct(p.holdout_acc),
                   core::Table::num(p.energy_per_sample, 0),
                   core::Table::num(p.energy_savings_pct, 1)});
  bench::emit_table(ctx, "plan_search", table);
  ctx.report.set("search", result.to_json());

  // Gate 1: the searched front must weakly dominate every uniform plan.
  int violations = 0;
  for (const auto& ub : result.uniform_baselines) {
    bool covered = false;
    for (const auto& fp : result.front)
      covered = covered ||
                search::weakly_dominates({fp.holdout_acc, fp.energy_per_sample},
                                         {ub.holdout_acc, ub.energy_per_sample});
    if (!covered) {
      std::printf("VIOLATION: %s (%.2f%%, %.0f units) not dominated by the front\n",
                  ub.name.c_str(), 100.0 * ub.holdout_acc, ub.energy_per_sample);
      ++violations;
    }
  }
  ctx.metric("dominance_violations", static_cast<int64_t>(violations));

  // Gate 2: the emitted ladder is directly servable — same text a
  // `--emit` file holds, parsed by the QoS machinery and booted as an
  // engine ladder without modification.
  const std::string ladder = result.to_ladder_text();
  const auto pts = qos::parse_points(ladder);
  serve::ModelSpec mspec;
  mspec.model = core::ModelKind::kResNet20;
  mspec.profile = core::BenchProfile::from_env();
  mspec.qos_points = ladder;
  const auto engine = serve::Engine::load(mspec);
  std::printf("\nladder: %zu point(s) re-parsed, engine up with %d operating point(s)\n",
              pts.size(), static_cast<int>(engine->operating_points().size()));
  ctx.metric("ladder_points", static_cast<int64_t>(pts.size()));
  ctx.metric("engine_points", static_cast<int64_t>(static_cast<int>(engine->operating_points().size())));
  if (static_cast<int>(engine->operating_points().size()) != static_cast<int>(result.front.size())) {
    std::printf("VIOLATION: engine ladder size differs from the emitted front\n");
    ++violations;
  }

  std::printf("\nExpected shape: the searched front matches the best uniform's accuracy at\n"
              "equal-or-lower energy and extends to cheaper mixed points no uniform\n"
              "assignment reaches.\n");
  return violations == 0 ? 0 : 1;
}
