// Ablation — Monte-Carlo sample budget of the GE error fit.
//
// The paper uses 50 simulations of a single convolution ("takes less than
// 1 second"). This sweep shows how the fitted slope stabilises with the
// simulation count and what a short ApproxKD+GE run does with each fit.
#include <chrono>

#include "bench_common.hpp"

AXNN_BENCH_CASE(ablation_ge_fit, "Ablation — GE Monte-Carlo fit budget (trunc5)") {
  using namespace axnn;

  const approx::SignedMulTable tab(axmul::make_lut("trunc5"));

  core::Table table({"num_sims", "fit slope k", "intercept c", "clamp [b, a]", "fit ms"});
  for (const int sims : {2, 5, 10, 25, 50, 100, 200}) {
    ge::McConfig mc;
    mc.num_sims = sims;
    const auto t0 = std::chrono::steady_clock::now();
    const auto fit = ge::fit_multiplier_error(tab, mc);
    const double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count();
    std::string clamp = "[";  // built incrementally: GCC 12 -Wrestrict
    clamp += core::Table::num(fit.b, 0);  // false-positives on char* + &&
    clamp += ", ";
    clamp += core::Table::num(fit.a, 0);
    clamp += "]";
    table.add_row({std::to_string(sims), core::Table::num(fit.k, 5),
                   core::Table::num(fit.c, 1), clamp, core::Table::num(ms, 1)});
  }
  bench::emit_table(ctx, "fit_budget", table);

  // Effect of the fit on a short fine-tuning run: default (50 sims) vs a
  // deliberately tiny budget.
  const auto profile = core::BenchProfile::from_env();
  core::Workbench wb(bench::workbench_config(core::ModelKind::kResNet20));
  (void)wb.run_quantization_stage(/*use_kd=*/true);

  auto fc = wb.default_ft_config();
  fc.epochs = profile.ablation_epochs;
  const auto run_of = [&](train::Method m) {
    auto setup = core::ApproxStageSetup::uniform("trunc5", m, 5.0f);
    setup.finetune = fc;
    return wb.run_approximation_stage(setup);
  };
  const auto run50 = run_of(train::Method::kApproxKD_GE);
  const auto run_kd = run_of(train::Method::kApproxKD);
  ctx.metric("approxkd_ge_acc", run50.result.final_acc);
  ctx.metric("approxkd_acc", run_kd.result.final_acc);
  std::printf("\nshort run (%d epochs): ApproxKD+GE(50 sims) %.2f%% vs ApproxKD %.2f%%\n",
              fc.epochs, 100.0 * run50.result.final_acc, 100.0 * run_kd.result.final_acc);
  std::printf("paper: 50 simulations fit in <1 s; the slope is stable from ~25 sims on.\n");
  return 0;
}
