// Table V — comparison of retraining methods for approximate ResNet20 with
// 8A4W quantization: Normal [4] / GE (ours) / alpha [5] / ApproxKD (ours) /
// ApproxKD+GE (ours), per multiplier.
//
// Expected shape (paper): ApproxKD+GE always best; ApproxKD next; GE beats
// normal on truncated (biased) multipliers and coincides with it on
// EvoApprox (unbiased); alpha ~ normal; evoa249 (48.8% MRE) stays at random
// guessing regardless of method.
#include <array>
#include <map>

#include "bench_common.hpp"

AXNN_BENCH_CASE(table5_resnet20, "Table V — retraining methods, approximate ResNet20") {
  using namespace axnn;

  const auto profile = core::BenchProfile::from_env();
  core::Workbench wb(bench::workbench_config(core::ModelKind::kResNet20));
  const auto s1 = wb.run_quantization_stage(/*use_kd=*/true);
  std::printf("FP %.2f%% | 8A4W %.2f%% -> %.2f%% after KD quantization stage\n\n",
              100.0 * wb.fp_accuracy(), 100.0 * wb.quant_acc_before_ft(),
              100.0 * s1.final_acc);

  // Paper final accuracies [normal, ge, alpha, approxkd, approxkd+ge]
  // (Table V, "-" = not run / not applicable).
  const std::map<std::string, std::array<double, 5>> paper = {
      {"trunc2", {90.31, 90.35, 90.29, 90.39, 90.44}},
      {"trunc3", {90.17, 90.23, 90.16, 90.39, 90.41}},
      {"trunc4", {89.33, 89.45, 89.32, 89.44, 89.51}},
      {"trunc5", {84.63, 86.25, 84.96, 87.56, 87.79}},
      {"evoa470", {90.50, 0, 90.47, 90.55, 90.55}},
      {"evoa29", {89.90, 0, 89.93, 89.99, 89.99}},
      {"evoa228", {84.09, 0, 83.93, 85.65, 85.65}},
      {"evoa249", {10.00, 0, 10.04, 10.02, 10.02}},
  };

  const double reference = s1.final_acc;
  core::Table table({"Multiplier", "MRE[%]", "Savings[%]", "Initial[%]", "Normal", "GE",
                     "alpha", "ApproxKD", "ApproxKD+GE", "paper N/KD+GE"});
  for (const auto& mult : bench::table5_multipliers(profile.full)) {
    const auto row = bench::run_comparison_row(wb, mult, reference);
    ctx.report.add_event(bench::row_to_json(row));
    std::string paper_ref = "-";
    if (const auto it = paper.find(mult); it != paper.end())
      paper_ref = core::Table::num(it->second[0], 2) + "/" +
                  core::Table::num(it->second[4], 2);
    if (!row.finetuned) {
      table.add_row({row.multiplier, core::Table::num(100.0 * row.mre, 1),
                     core::Table::num(row.savings_pct, 0), bench::pct(row.initial_acc), "-",
                     "-", "-", "-", "-", paper_ref});
      continue;
    }
    table.add_row({row.multiplier, core::Table::num(100.0 * row.mre, 1),
                   core::Table::num(row.savings_pct, 0), bench::pct(row.initial_acc),
                   bench::pct(row.normal), row.ge_distinct ? bench::pct(row.ge) : "(=N)",
                   bench::pct(row.alpha), bench::pct(row.approxkd),
                   row.ge_distinct ? bench::pct(row.approxkd_ge) : bench::pct(row.approxkd),
                   paper_ref});
    std::printf("  %-8s done: normal %.2f | kd+ge %.2f\n", mult.c_str(), 100.0 * row.normal,
                100.0 * row.approxkd_ge);
  }
  std::printf("\n");
  ctx.metric("reference_acc", reference);
  bench::emit_table(ctx, "table5", table);
  return 0;
}
