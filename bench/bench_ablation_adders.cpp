// Extension bench (paper outlook: "incorporation of more than one
// approximation technique") — approximate accumulation on top of
// approximate multiplication.
//
// Zero-shot accuracy of the fine-tuned approximate ResNet20 (trunc3
// multiplier) when the GEMM accumulator itself is approximated with
// lower-part-OR or truncated adders of increasing depth.
#include "bench_common.hpp"

AXNN_BENCH_CASE(ablation_adders, "Extension — approximate adders in the accumulation path") {
  using namespace axnn;

  // Adder characterisation.
  core::Table chars({"Adder", "mean err (bias)", "rms err", "max |err|"});
  for (const char* id : {"exact_add", "loa4", "loa6", "loa8", "truncadd4", "truncadd6",
                         "truncadd8"}) {
    const auto adder = axmul::make_adder(id);
    const auto stats = axmul::compute_adder_stats(*adder);
    chars.add_row({id, core::Table::num(stats.mean_error, 2),
                   core::Table::num(stats.rms_error, 2),
                   core::Table::num(stats.max_abs_error, 0)});
  }
  bench::emit_table(ctx, "adder_stats", chars);

  // Network impact: fine-tune once under trunc3, then evaluate with the
  // accumulator approximated at increasing depths.
  core::Workbench wb(bench::workbench_config(core::ModelKind::kResNet20));
  (void)wb.run_quantization_stage(/*use_kd=*/true);
  const auto run = wb.run_approximation_stage(
      core::ApproxStageSetup::uniform("trunc3", train::Method::kApproxKD_GE, 5.0f));
  std::printf("\ntrunc3 + ApproxKD+GE fine-tuned accuracy: %.2f%%\n\n",
              100.0 * run.result.final_acc);
  ctx.metric("finetuned_acc", run.result.final_acc);

  const approx::SignedMulTable trunc3(axmul::make_lut("trunc3"));
  core::Table table({"Adder", "accuracy[%]"});
  for (const char* id : {"exact_add", "loa2", "loa4", "loa6", "loa8", "truncadd2",
                         "truncadd4", "truncadd6", "truncadd8"}) {
    const auto adder = axmul::make_adder(id);
    const nn::ExecContext ec =
        nn::ExecContext::quant_approx(trunc3).with_adder(*adder);
    const double acc = train::evaluate_accuracy(wb.model(), wb.data().test, ec);
    table.add_row({id, bench::pct(acc)});
    std::printf("  %-10s %.2f%%\n", id, 100.0 * acc);
  }
  std::printf("\n");
  bench::emit_table(ctx, "adder_accuracy", table);
  std::printf("\nExpected shape: accuracy degrades monotonically with adder depth; LOA\n"
              "(carry-free OR) is gentler than truncation at equal depth.\n");
  return 0;
}
