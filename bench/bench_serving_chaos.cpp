// Deterministic serving chaos harness (DESIGN.md §5k, CI job chaos-smoke).
//
// Brings up a two-lane engine on a micro model (the harness gates lifecycle
// invariants, not kernel throughput — a small model keeps the ASan/UBSan CI
// run in seconds) and walks it through five phases:
//
//   baseline  — clean closed-loop traffic; nothing may shed or reject.
//   stall     — a ChaosInjector stalls every lane-0 batch past the watchdog
//               budget: the batch must be abandoned, re-run on lane 1, the
//               lane quarantined, the straggler's late result discarded, and
//               the lane readmitted after golden-probe probation.
//   fault     — lane-0 batches throw ChaosFault: requeue with bounded
//               retries, quarantine, probation, zero failed requests.
//   reload    — mid-traffic save_checkpoint() + reload(from_checkpoint):
//               the epoch flip may not fail or lose a single in-flight
//               request.
//   overload  — admission flipped to shed-newest, the slot pool pinned full:
//               overflow submits must shed instantly, expired / infeasible
//               deadlines must reject without consuming a slot.
//
// Every ticket is awaited, so the gates below can insist on exact outcome
// accounting: submitted == served + shed + rejected, shed > 0 only during
// the injected overload, and the engine ends fully healthy. The chaos
// schedule is batch-indexed (not wall-clock), so the same spec trips the
// same failures under sanitizers or at -O3; exit is nonzero on any gate
// violation. The run lands one chaosReport under "chaos" in
// BENCH_serving_chaos.json (schema: definitions.chaosReport).
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <limits>
#include <thread>
#include <vector>

#include "bench_common.hpp"

namespace {

constexpr uint64_t kSeed = 0xC4A05;
constexpr int kLanes = 2;
constexpr int kMaxBatch = 4;
constexpr int kQueueCapacity = 16;
constexpr int64_t kBudgetMs = 300;    ///< watchdog budget (explicit, pinned)
constexpr int64_t kStallMs = 1500;    ///< injected stall, >> budget
constexpr int kOverflow = 8;          ///< submits beyond the pinned-full pool

}  // namespace

AXNN_BENCH_CASE(serving_chaos, "Serving: deterministic chaos (stall / fault / reload / overload)") {
  using namespace axnn;
  namespace fs = std::filesystem;

  const fs::path ckpt_dir = fs::temp_directory_path() / "axnn_chaos_ckpt";
  fs::remove_all(ckpt_dir);

  serve::ModelSpec spec;
  spec.model = core::ModelKind::kResNet20;
  spec.profile = core::BenchProfile::from_env();
  // Micro model scale regardless of profile: lifecycle behavior is
  // model-size-independent and the chaos phases must stay cheap under
  // sanitizers (threads / cache dir still follow the environment).
  spec.profile.image_size = 8;
  spec.profile.train_size = 160;
  spec.profile.test_size = 80;
  spec.profile.resnet_width = 0.25f;
  spec.profile.fp_epochs = 4;
  spec.profile.ft_epochs = 2;
  spec.profile.ft_batch = 40;
  spec.profile.quant_epochs = 1;
  spec.profile.decay_every = 2;
  spec.use_cache = false;
  spec.plan = "default=trunc5";
  spec.finetune = false;
  spec.batching.max_batch = kMaxBatch;
  spec.batching.max_delay_us = 20000;
  spec.batching.queue_capacity = kQueueCapacity;
  spec.lanes = kLanes;
  spec.watchdog.budget_ms = kBudgetMs;
  spec.watchdog.probation_interval_ms = 25;
  spec.watchdog.probation_passes = 2;
  spec.watchdog.max_retries = 2;
  spec.checkpoint_dir = ckpt_dir.string();
  spec.checkpoint_keep = 2;

  auto engine = serve::Engine::load(spec);
  serve::Session& session = engine->session();
  const data::Dataset& pool = engine->data().test;
  const int requests = ctx.full ? 96 : 32;

  int failures = 0;
  const auto gate = [&](bool ok, const std::string& what) {
    if (!ok) {
      std::printf("FAIL: %s\n", what.c_str());
      ++failures;
    }
  };

  // Quiescence helper: the chaos hook may only be swapped while no batch is
  // executing, and readmission is itself a gated invariant. Returns false
  // if a quarantined lane never comes back.
  const auto wait_all_healthy = [&] {
    const auto t0 = std::chrono::steady_clock::now();
    while (engine->healthy_lanes() < kLanes) {
      if (std::chrono::steady_clock::now() - t0 > std::chrono::seconds(30)) return false;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return true;
  };

  obs::Json phases = obs::Json::array();
  core::Table t({"phase", "req", "served", "shed", "rejected", "p99 [ms]", "quar", "readmit",
                 "requeue", "fail"});
  int64_t tot_requests = 0, tot_served = 0, tot_shed = 0, tot_rejected = 0;
  const serve::EngineStats base = engine->stats();
  serve::EngineStats prev = base;
  const auto record = [&](const char* name, int64_t req, int64_t served, int64_t shed,
                          int64_t rejected, double p99_ms) {
    const serve::EngineStats now = engine->stats();
    obs::Json j;
    j["phase"] = name;
    j["requests"] = req;
    j["served"] = served;
    j["shed"] = shed;
    j["rejected"] = rejected;
    j["p99_ms"] = p99_ms;
    j["quarantines"] = now.quarantines - prev.quarantines;
    j["readmissions"] = now.readmissions - prev.readmissions;
    j["requeued_batches"] = now.requeued_batches - prev.requeued_batches;
    j["failed_requests"] = now.failed_requests - prev.failed_requests;
    phases.push_back(j);
    t.add_row({name, core::Table::num(static_cast<double>(req), 0),
               core::Table::num(static_cast<double>(served), 0),
               core::Table::num(static_cast<double>(shed), 0),
               core::Table::num(static_cast<double>(rejected), 0),
               core::Table::num(p99_ms, 2),
               core::Table::num(static_cast<double>(now.quarantines - prev.quarantines), 0),
               core::Table::num(static_cast<double>(now.readmissions - prev.readmissions), 0),
               core::Table::num(static_cast<double>(now.requeued_batches - prev.requeued_batches), 0),
               core::Table::num(static_cast<double>(now.failed_requests - prev.failed_requests), 0)});
    tot_requests += req;
    tot_served += served;
    tot_shed += shed;
    tot_rejected += rejected;
    prev = now;
  };

  serve::LoadSpec traffic;
  traffic.arrival = serve::Arrival::kClosed;
  traffic.requests = requests;
  traffic.clients = 4;

  // -- phase 1: baseline ----------------------------------------------------
  traffic.seed = kSeed;
  {
    const serve::LoadReport r = serve::run_load(*engine, session, pool, traffic);
    record("baseline", r.requests, r.served, r.shed, r.rejected, r.latency.p99);
    gate(r.served == requests, "baseline: not every request served");
    gate(r.shed == 0 && r.rejected == 0, "baseline: shed/rejected without injected overload");
  }

  // -- phase 2: lane stall --------------------------------------------------
  serve::ChaosSpec stall_spec;
  stall_spec.seed = kSeed;
  stall_spec.stalls.push_back({0, 0, std::numeric_limits<int64_t>::max(), kStallMs});
  serve::ChaosInjector stall_chaos(stall_spec);
  engine->set_chaos(std::ref(stall_chaos));
  traffic.seed = kSeed + 1;
  {
    const serve::LoadReport r = serve::run_load(*engine, session, pool, traffic);
    const bool readmitted = wait_all_healthy();
    engine->set_chaos(nullptr);
    record("stall", r.requests, r.served, r.shed, r.rejected, r.latency.p99);
    gate(r.served == requests, "stall: abandoned batch lost requests");
    gate(r.shed == 0 && r.rejected == 0, "stall: shed/rejected during stall phase");
    gate(stall_chaos.stalls_fired() >= 1, "stall: injector never fired");
    gate(readmitted, "stall: lane 0 not readmitted within 30s");
    gate(r.latency.p99 < 30000.0, "stall: p99 unbounded during quarantine");
  }
  const serve::EngineStats after_stall = engine->stats();
  gate(after_stall.quarantines - base.quarantines >= 1, "stall: lane never quarantined");
  gate(after_stall.requeued_batches - base.requeued_batches >= 1,
       "stall: abandoned batch not requeued");
  gate(after_stall.discarded_batches - base.discarded_batches >= 1,
       "stall: straggler result not discarded");

  // -- phase 3: lane fault --------------------------------------------------
  serve::ChaosSpec fault_spec;
  fault_spec.seed = kSeed;
  fault_spec.faults.push_back({0, 0, std::numeric_limits<int64_t>::max()});
  serve::ChaosInjector fault_chaos(fault_spec);
  engine->set_chaos(std::ref(fault_chaos));
  traffic.seed = kSeed + 2;
  {
    const serve::LoadReport r = serve::run_load(*engine, session, pool, traffic);
    const bool readmitted = wait_all_healthy();
    engine->set_chaos(nullptr);
    record("fault", r.requests, r.served, r.shed, r.rejected, r.latency.p99);
    gate(r.served == requests, "fault: faulted batch lost requests");
    gate(r.shed == 0 && r.rejected == 0, "fault: shed/rejected during fault phase");
    gate(fault_chaos.faults_fired() >= 1, "fault: injector never fired");
    gate(readmitted, "fault: lane 0 not readmitted within 30s");
  }
  const serve::EngineStats after_fault = engine->stats();
  gate(after_fault.quarantines - after_stall.quarantines >= 1, "fault: lane never quarantined");
  gate(after_fault.failed_requests - base.failed_requests == 0,
       "fault: requests failed back to clients despite a healthy lane");

  // -- phase 4: hot reload under live traffic -------------------------------
  traffic.seed = kSeed + 3;
  {
    serve::LoadReport r;
    std::thread load([&] { r = serve::run_load(*engine, session, pool, traffic); });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const std::string saved = engine->save_checkpoint();
    gate(fs::exists(saved), "reload: save_checkpoint produced no file");
    serve::ReloadSpec rs;
    rs.from_checkpoint = true;
    engine->reload(rs);
    load.join();
    record("reload", r.requests, r.served, r.shed, r.rejected, r.latency.p99);
    gate(r.served == requests, "reload: epoch flip lost in-flight requests");
    gate(r.shed == 0 && r.rejected == 0, "reload: shed/rejected during reload phase");
    gate(r.latency.p99 < 60000.0, "reload: p99 unbounded across the dispatch pause");
  }
  const serve::EngineStats after_reload = engine->stats();
  gate(after_reload.reloads - base.reloads == 1, "reload: reload() did not complete");
  gate(after_reload.failed_requests - base.failed_requests == 0,
       "reload: requests failed during the swap");

  // -- phase 5: admission overload ------------------------------------------
  {
    serve::AdmissionConfig shed_cfg;
    shed_cfg.policy = serve::AdmissionPolicy::kShedNewest;
    engine->set_admission(shed_cfg);
    const Tensor sample = pool.slice(0, 1).first;
    // Pin the pool full: slots stay owned until awaited, so the overflow
    // submits below shed deterministically instead of racing the dispatcher.
    std::vector<serve::Ticket> held;
    held.reserve(kQueueCapacity);
    for (int i = 0; i < kQueueCapacity; ++i) held.push_back(session.submit(sample));
    int64_t served = 0, shed = 0, rejected = 0;
    for (int i = 0; i < kOverflow; ++i) {
      const serve::Result r = session.await(session.submit(sample));
      if (r.outcome == serve::Outcome::kShed) ++shed;
    }
    gate(shed == kOverflow, "overload: overflow submits did not shed instantly");

    // Expired and infeasible deadlines reject without touching the pool.
    serve::AdmissionConfig strict;
    strict.reject_infeasible = true;
    engine->set_admission(strict);
    gate(engine->service_floor_ns() > 0, "overload: no calibrated service floor");
    if (session.await(session.submit(sample, -1)).outcome == serve::Outcome::kRejected)
      ++rejected;
    if (session.await(session.submit(sample, 1)).outcome == serve::Outcome::kRejected)
      ++rejected;
    gate(rejected == 2, "overload: expired/infeasible deadline not rejected");

    for (const serve::Ticket& h : held)
      if (session.await(h).outcome == serve::Outcome::kServed) ++served;
    gate(served == kQueueCapacity, "overload: held requests lost under shedding");
    engine->set_admission(serve::AdmissionConfig{});
    record("overload", kQueueCapacity + kOverflow + 2, served, shed, rejected, 0.0);
  }

  engine->drain();
  const serve::EngineStats fin = engine->stats();

  // -- cross-phase invariants ------------------------------------------------
  const int64_t lost = tot_requests - tot_served - tot_shed - tot_rejected;
  gate(lost == 0, "chaos: tickets lost (submitted != served + shed + rejected)");
  gate(fin.requests - base.requests == tot_served, "chaos: engine served count disagrees");
  gate(fin.shed - base.shed == tot_shed, "chaos: engine shed count disagrees");
  gate(fin.rejected - base.rejected == tot_rejected, "chaos: engine rejected count disagrees");
  gate(tot_shed == kOverflow, "chaos: shed outside the injected overload");
  gate(fin.failed_requests - base.failed_requests == 0, "chaos: failed requests leaked");
  gate(fin.quarantines - base.quarantines >= 2, "chaos: expected >= 2 quarantine events");
  gate(fin.readmissions - base.readmissions >= 2, "chaos: expected >= 2 readmissions");
  gate(fin.probes - base.probes >= 4, "chaos: probation probes never ran");
  gate(engine->healthy_lanes() == kLanes, "chaos: engine ends with unhealthy lanes");
  gate(fin.lanes_quarantined == 0, "chaos: quarantine gauge nonzero at exit");

  std::printf("\n-- chaos phases (budget=%lldms, stall=%lldms, lanes=%d) --\n",
              static_cast<long long>(kBudgetMs), static_cast<long long>(kStallMs), kLanes);
  bench::emit_table(ctx, "serving_chaos", t);

  obs::Json chaos;
  chaos["seed"] = static_cast<int64_t>(kSeed);
  chaos["lanes"] = kLanes;
  chaos["budget_ms"] = kBudgetMs;
  chaos["stall_ms"] = kStallMs;
  chaos["phases"] = std::move(phases);
  chaos["submitted"] = tot_requests;
  chaos["served"] = tot_served;
  chaos["shed"] = tot_shed;
  chaos["rejected"] = tot_rejected;
  chaos["lost"] = lost;
  chaos["stalls_fired"] = stall_chaos.stalls_fired();
  chaos["faults_fired"] = fault_chaos.faults_fired();
  chaos["quarantines"] = fin.quarantines - base.quarantines;
  chaos["readmissions"] = fin.readmissions - base.readmissions;
  chaos["requeued_batches"] = fin.requeued_batches - base.requeued_batches;
  chaos["discarded_batches"] = fin.discarded_batches - base.discarded_batches;
  chaos["probes"] = fin.probes - base.probes;
  chaos["reloads"] = fin.reloads - base.reloads;
  chaos["failed_requests"] = fin.failed_requests - base.failed_requests;
  ctx.report.set("chaos", std::move(chaos));

  ctx.metric("submitted", tot_requests);
  ctx.metric("served", tot_served);
  ctx.metric("shed", tot_shed);
  ctx.metric("rejected", tot_rejected);
  ctx.metric("lost", lost);
  ctx.metric("quarantines", fin.quarantines - base.quarantines);
  ctx.metric("readmissions", fin.readmissions - base.readmissions);
  ctx.metric("reloads", fin.reloads - base.reloads);
  ctx.metric("gate_failures", failures);

  engine.reset();
  fs::remove_all(ckpt_dir);
  return failures == 0 ? 0 : 1;
}
