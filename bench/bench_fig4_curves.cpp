// Fig. 4 — fine-tuning accuracy vs epoch of ResNet20 approximated with
// truncated multiplier 5, for all five methods.
//
// Expected shape (paper): ApproxKD+GE and ApproxKD lead from the first
// epoch, followed by GE; alpha tracks normal (slightly better early, then
// indistinguishable — it underperforms under drastic approximation).
#include "bench_common.hpp"

AXNN_BENCH_CASE(fig4_curves, "Fig. 4 — accuracy vs epoch, ResNet20 + trunc5") {
  using namespace axnn;

  core::Workbench wb(bench::workbench_config(core::ModelKind::kResNet20));
  (void)wb.run_quantization_stage(/*use_kd=*/true);

  const std::vector<train::Method> methods = {
      train::Method::kNormal, train::Method::kGE, train::Method::kAlpha,
      train::Method::kApproxKD, train::Method::kApproxKD_GE};

  std::vector<std::vector<double>> curves;
  int epochs = 0;
  for (const auto m : methods) {
    const auto run = wb.run_approximation_stage(
        core::ApproxStageSetup::uniform("trunc5", m, /*t2=*/5.0f));
    std::vector<double> curve = {run.initial_acc};
    for (const auto& ep : run.result.history) curve.push_back(ep.test_acc);
    epochs = static_cast<int>(curve.size());
    curves.push_back(std::move(curve));
    ctx.metric("final_acc." + train::to_string(m), run.result.final_acc);
    std::printf("  %-12s final %.2f%%\n", train::to_string(m).c_str(),
                100.0 * run.result.final_acc);
  }

  std::printf("\n");
  core::Table table({"epoch", "normal", "ge", "alpha", "approxkd", "approxkd+ge"});
  for (int e = 0; e < epochs; ++e) {
    std::vector<std::string> row = {e == 0 ? "init" : std::to_string(e - 1)};
    for (const auto& c : curves) row.push_back(bench::pct(c[static_cast<size_t>(e)]));
    table.add_row(row);
  }
  bench::emit_table(ctx, "fig4", table);
  std::printf("\nCSV series (for plotting):\n%s", table.to_csv().c_str());
  return 0;
}
