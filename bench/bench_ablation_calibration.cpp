// Ablation (beyond the paper's tables) — quantization-step calibration:
// MinPropQE [1] (the paper's choice) vs min-MSE vs max-abs weight
// calibration, measured as 8A4W accuracy before any fine-tuning.
//
// This isolates the design decision DESIGN.md §5 calls out: MinPropQE
// chooses the step that minimises the *propagated* (layer-output) error,
// which matters most at 4-bit weights.
#include "bench_common.hpp"

AXNN_BENCH_CASE(ablation_calibration, "Ablation — weight-step calibration method") {
  using namespace axnn;

  struct Entry {
    quant::Calibration method;
    const char* name;
  };
  const std::vector<Entry> methods = {
      {quant::Calibration::kMaxAbs, "max-abs"},
      {quant::Calibration::kMinMse, "min-MSE"},
      {quant::Calibration::kMinPropQE, "MinPropQE (paper)"},
  };

  core::Table table({"Calibration", "8A4W acc before FT[%]", "drop vs FP[%]"});
  for (const auto& entry : methods) {
    auto cfg = bench::workbench_config(core::ModelKind::kResNet20);
    cfg.calibration = entry.method;
    core::Workbench wb(cfg);
    // Calibrate + evaluate without fine-tuning.
    train::calibrate_model(wb.model(), wb.data().train, cfg.calib_samples, 128,
                           entry.method);
    const double acc = train::evaluate_accuracy(wb.model(), wb.data().test,
                                                nn::ExecContext::quant_exact());
    table.add_row({entry.name, bench::pct(acc), bench::pct(wb.fp_accuracy() - acc)});
  }
  bench::emit_table(ctx, "calibration", table);

  std::printf("\nActivation-step choice (same model, MinPropQE weights):\n");
  std::printf("distribution-aware (min-MSE reservoir) activation steps are the library\n"
              "default; see DESIGN.md §5 — worst-case max-abs steps waste activation bits\n"
              "and push products into truncated LSBs.\n");
  return 0;
}
