// Ablation — alpha-regularization strength sweep (the paper sweeps
// alpha in {1e-6 ... 1e-12} and reports 1e-11 as generally best; our
// reimplementation regularises the logit error against the quantized
// teacher, so the sweep re-locates the useful range).
#include "bench_common.hpp"

AXNN_BENCH_CASE(ablation_alpha, "Ablation — alpha-regularization sweep (ResNet20 + trunc5)") {
  using namespace axnn;

  const auto profile = core::BenchProfile::from_env();
  core::Workbench wb(bench::workbench_config(core::ModelKind::kResNet20));
  (void)wb.run_quantization_stage(/*use_kd=*/true);

  const std::vector<double> alphas = profile.full
                                         ? std::vector<double>{1e-11, 1e-6, 1e-3, 1e-2,
                                                               1e-1, 1.0, 10.0}
                                         : std::vector<double>{1e-11, 1e-2, 1.0};

  core::Table table({"alpha", "final acc[%]", "best acc[%]"});
  for (const double alpha : alphas) {
    auto setup = core::ApproxStageSetup::uniform("trunc5", train::Method::kAlpha, 1.0f);
    setup.finetune = wb.default_ft_config();
    setup.finetune->alpha = alpha;
    setup.finetune->epochs = profile.ablation_epochs;
    const auto run = wb.run_approximation_stage(setup);
    table.add_row({core::Table::num(alpha, alpha < 1e-3 ? 12 : 3),
                   bench::pct(run.result.final_acc), bench::pct(run.result.best_acc)});
    std::printf("  alpha=%g -> %.2f%%\n", alpha, 100.0 * run.result.final_acc);
  }
  std::printf("\n");
  bench::emit_table(ctx, "alpha_sweep", table);
  std::printf("\nPaper observation: alpha-regularization roughly tracks normal fine-tuning\n"
              "and underperforms when drastic approximations are applied.\n");
  return 0;
}
