// Ablation — alpha-regularization strength sweep (the paper sweeps
// alpha in {1e-6 ... 1e-12} and reports 1e-11 as generally best; our
// reimplementation regularises the logit error against the quantized
// teacher, so the sweep re-locates the useful range).
#include "bench_common.hpp"

int main() {
  using namespace axnn;
  bench::print_header("Ablation — alpha-regularization sweep (ResNet20 + trunc5)");

  const auto profile = core::BenchProfile::from_env();
  core::Workbench wb(bench::workbench_config(core::ModelKind::kResNet20));
  (void)wb.run_quantization_stage(/*use_kd=*/true);

  const std::vector<double> alphas = profile.full
                                         ? std::vector<double>{1e-11, 1e-6, 1e-3, 1e-2,
                                                               1e-1, 1.0, 10.0}
                                         : std::vector<double>{1e-11, 1e-2, 1.0};

  core::Table table({"alpha", "final acc[%]", "best acc[%]"});
  for (const double alpha : alphas) {
    auto fc = wb.default_ft_config();
    fc.alpha = alpha;
    fc.epochs = profile.ablation_epochs;
    const auto run = wb.run_approximation_stage("trunc5", train::Method::kAlpha, 1.0f, fc);
    table.add_row({core::Table::num(alpha, alpha < 1e-3 ? 12 : 3),
                   bench::pct(run.result.final_acc), bench::pct(run.result.best_acc)});
    std::printf("  alpha=%g -> %.2f%%\n", alpha, 100.0 * run.result.final_acc);
  }
  std::printf("\n");
  table.print();
  std::printf("\nPaper observation: alpha-regularization roughly tracks normal fine-tuning\n"
              "and underperforms when drastic approximations are applied.\n");
  return 0;
}
