// Fig. 3 — error of EvoApprox(-like) 228: the accumulated error is
// unbiased in y, so the piecewise-linear estimate collapses to a constant
// and GE degenerates to the plain STE (paper Sec. IV-B).
#include "bench_common.hpp"

AXNN_BENCH_CASE(fig3_error_fit, "Fig. 3 — error of EvoApprox-like 228") {
  using namespace axnn;

  const approx::SignedMulTable tab(axmul::make_lut("evoa228"));
  ge::McConfig mc;
  const auto samples = ge::sample_accumulated_error(tab, mc);
  const auto fit = ge::fit_piecewise_linear(samples);

  std::printf("MC samples: %zu\n", samples.size());
  std::printf("fit: %s\n", fit.to_string().c_str());
  std::printf("constant fit: %s  => df/dy = 0, ApproxKD and ApproxKD+GE coincide\n\n",
              fit.is_constant() ? "YES" : "no");

  constexpr int kBins = 24;
  double y_lo = samples.front().first, y_hi = y_lo;
  for (const auto& [y, e] : samples) {
    y_lo = std::min(y_lo, y);
    y_hi = std::max(y_hi, y);
  }
  std::vector<double> sum(kBins, 0.0);
  std::vector<int64_t> cnt(kBins, 0);
  for (const auto& [y, e] : samples) {
    int b = static_cast<int>((y - y_lo) / (y_hi - y_lo + 1e-9) * kBins);
    b = std::min(std::max(b, 0), kBins - 1);
    sum[static_cast<size_t>(b)] += e;
    ++cnt[static_cast<size_t>(b)];
  }
  core::Table table({"y_center", "mean_eps", "f(y)", "count"});
  for (int b = 0; b < kBins; ++b) {
    if (cnt[static_cast<size_t>(b)] == 0) continue;
    const double yc = y_lo + (b + 0.5) * (y_hi - y_lo) / kBins;
    table.add_row({core::Table::num(yc, 0),
                   core::Table::num(sum[static_cast<size_t>(b)] /
                                        static_cast<double>(cnt[static_cast<size_t>(b)]),
                                    1),
                   core::Table::num(fit.eval(yc), 1),
                   std::to_string(cnt[static_cast<size_t>(b)])});
  }
  bench::emit_table(ctx, "fig3", table);
  ctx.metric("fit", core::to_json(fit));

  // Full-domain conditional profile (exhaustive, not MC) for reference.
  std::printf("\nExhaustive per-product error profile (E[eps | y] over the 256x16 domain):\n");
  const auto profile = axmul::error_profile(axmul::make_lut("evoa228"), 12);
  core::Table t2({"product_bin_center", "mean_eps", "count"});
  for (const auto& bin : profile)
    if (bin.count > 0)
      t2.add_row({core::Table::num(bin.y_center, 0), core::Table::num(bin.mean_eps, 2),
                  std::to_string(bin.count)});
  bench::emit_table(ctx, "fig3_profile", t2);
  return 0;
}
