// Sentinel coverage sweep: detection and false-positive rates plus recovered
// accuracy for the runtime fault sentinel (DESIGN.md §5f) on ResNet20/trunc5.
//
// Three questions, matching the subsystem's acceptance criteria:
//   * False positives — on a fault-free approximate run the calibrated ABFT
//     tolerance must stay quiet (< 1% of checks) and leave accuracy intact.
//   * LUT faults — sweep stuck-at defect rates in the multiplier table; at a
//     rate where the unguarded model loses >= 5 accuracy points, the
//     sentinel (exact re-execution + degradation) must recover at least half
//     of the lost accuracy.
//   * Weight faults — exponent bit flips in conv/FC weight tensors; the
//     golden-checksum repair restores the calibrated weights, so guarded
//     accuracy should return to (near) clean.
#include <memory>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace axnn;

constexpr uint64_t kSeeds[] = {11, 23, 47};

}  // namespace

AXNN_BENCH_CASE(sentinel_coverage,
                "Sentinel coverage: detection / false positives / recovered accuracy") {
  const std::string mult = "trunc5";

  core::Workbench wb(bench::workbench_config(core::ModelKind::kResNet20));
  (void)wb.run_quantization_stage(/*use_kd=*/true);
  const auto spec = axmul::find_spec(mult).value();
  (void)wb.run_approximation_stage(
      core::ApproxStageSetup::uniform(mult, train::Method::kNormal, bench::best_t2_for(spec)));
  auto model = wb.clone();

  const approx::SignedMulTable clean_tab(axmul::make_lut(mult));
  const double clean_acc =
      train::evaluate_accuracy(*model, wb.data().test, nn::ExecContext::quant_approx(clean_tab));
  std::printf("  clean approximate accuracy: %s%%\n", bench::pct(clean_acc).c_str());
  ctx.metric("clean_acc", clean_acc);
  const approx::SignedMulTable exact_tab(axmul::make_lut("exact"));
  const double exact_acc =
      train::evaluate_accuracy(*model, wb.data().test, nn::ExecContext::quant_approx(exact_tab));
  std::printf("  same weights under the exact multiplier: %s%%\n", bench::pct(exact_acc).c_str());
  ctx.metric("exact_mul_acc", exact_acc);

  // -- False positives: fault-free approximate run under the sentinel. --
  sentinel::SentinelConfig scfg;
  scfg.policy.degrade_after = 1;  // stuck-at defects persist: degrade fast
  sentinel::Sentinel sent(scfg);
  sent.calibrate_uniform(*model, clean_tab, mult);
  const double acc_ff = train::evaluate_accuracy(
      *model, wb.data().test, nn::ExecContext::quant_approx(clean_tab).with_monitor(sent));
  const sentinel::SentinelReport rep_ff = sent.report();
  const double fp_rate = rep_ff.violation_rate();
  std::printf("  fault-free: %s%% acc, %lld violations / %lld checks (fp rate %.4f%%)\n",
              bench::pct(acc_ff).c_str(), static_cast<long long>(rep_ff.total_violations()),
              static_cast<long long>(rep_ff.total_checks()), 100.0 * fp_rate);
  ctx.metric("fault_free_acc", acc_ff);
  ctx.metric("false_positive_rate", fp_rate);
  ctx.report.set("sentinel_fault_free", core::to_json(rep_ff));

  // -- LUT fault sweep: stuck-at defects in the product table. --
  const double rates[] = {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2};
  core::Table lut({"fault rate", "unguarded[%]", "sentinel[%]", "recovered[%]", "detected",
                   "violations", "degraded leaves"});
  double recovery_at_5pt = -1.0, rate_at_5pt = 0.0, loss_at_5pt = 0.0;
  for (const double rate : rates) {
    double unguarded = 0.0, guarded = 0.0;
    int detected = 0;
    int64_t degraded = 0, violations = 0;
    for (const uint64_t seed : kSeeds) {
      approx::SignedMulTable bad(axmul::make_lut(mult));
      resilience::FaultSpec fs;
      fs.rate = rate;
      fs.kind = resilience::FaultKind::kStuckAt;
      fs.bit_hi = 12;  // stuck bits within the 8x4 product magnitude range
      fs.seed = seed;
      resilience::corrupt_lut(bad, resilience::FaultInjector(fs));

      unguarded +=
          train::evaluate_accuracy(*model, wb.data().test, nn::ExecContext::quant_approx(bad));
      sent.reset_counters();  // fresh detection state, calibration kept
      guarded += train::evaluate_accuracy(*model, wb.data().test,
                                          nn::ExecContext::quant_approx(bad).with_monitor(sent));
      const sentinel::SentinelReport rep = sent.report();
      if (rep.total_violations() > 0) ++detected;
      violations += rep.total_violations();
      degraded += rep.degraded_leaves();
    }
    const double n = static_cast<double>(std::size(kSeeds));
    unguarded /= n;
    guarded /= n;
    const double lost = clean_acc - unguarded;
    const double recovered = lost > 1e-9 ? (guarded - unguarded) / lost : 0.0;
    lut.add_row({core::Table::num(rate, 5), bench::pct(unguarded), bench::pct(guarded),
                 core::Table::num(100.0 * recovered, 1),
                 core::Table::num(detected, 0) + "/" + core::Table::num(std::size(kSeeds), 0),
                 core::Table::num(static_cast<double>(violations) / n, 1),
                 core::Table::num(static_cast<double>(degraded) / n, 1)});
    if (recovery_at_5pt < 0.0 && lost >= 0.05) {
      recovery_at_5pt = recovered;
      rate_at_5pt = rate;
      loss_at_5pt = lost;
    }
  }
  std::printf("\n-- LUT stuck-at faults (mean over %zu seeds) --\n", std::size(kSeeds));
  bench::emit_table(ctx, "sentinel_lut", lut);
  if (recovery_at_5pt >= 0.0) {
    std::printf("  at rate %g the unguarded model loses %.1f points; sentinel recovers %.0f%%\n",
                rate_at_5pt, 100.0 * loss_at_5pt, 100.0 * recovery_at_5pt);
    ctx.metric("rate_at_5pt_loss", rate_at_5pt);
    ctx.metric("loss_at_5pt", loss_at_5pt);
    ctx.metric("recovery_at_5pt", recovery_at_5pt);
  } else {
    std::printf("  no swept rate lost >= 5 accuracy points unguarded\n");
  }
  ctx.report.set("sentinel_lut_last", core::to_json(sent.report()));

  // -- Weight faults: exponent flips in conv/FC weights, golden repair. --
  core::Table wt({"fault rate", "unguarded[%]", "sentinel[%]", "recovered[%]"});
  for (const double rate : {1e-3, 1e-2}) {
    double unguarded = 0.0, guarded = 0.0;
    for (const uint64_t seed : kSeeds) {
      auto copy = wb.clone();
      nn::copy_state(*model, *copy);
      // Calibrate against the clean weights, as a deployment would, then
      // corrupt. bit range [23, 30): exponent flips that change magnitude
      // drastically but keep every weight finite.
      sentinel::Sentinel ws;
      ws.calibrate_uniform(*copy, clean_tab, mult);
      std::vector<Tensor*> weights;
      for (const auto& leaf : nn::enumerate_gemm_leaves(*copy)) {
        if (auto* c = dynamic_cast<nn::Conv2d*>(leaf.layer)) weights.push_back(&c->weight().value);
        if (auto* l = dynamic_cast<nn::Linear*>(leaf.layer)) weights.push_back(&l->weight().value);
      }
      resilience::FaultSpec fs;
      fs.rate = rate;
      fs.bit_lo = 23;
      fs.bit_hi = 30;
      fs.seed = seed;
      resilience::corrupt_tensors(weights, resilience::FaultInjector(fs));

      unguarded +=
          train::evaluate_accuracy(*copy, wb.data().test, nn::ExecContext::quant_approx(clean_tab));
      guarded += train::evaluate_accuracy(
          *copy, wb.data().test, nn::ExecContext::quant_approx(clean_tab).with_monitor(ws));
    }
    const double n = static_cast<double>(std::size(kSeeds));
    unguarded /= n;
    guarded /= n;
    const double lost = clean_acc - unguarded;
    const double recovered = lost > 1e-9 ? (guarded - unguarded) / lost : 0.0;
    wt.add_row({core::Table::num(rate, 5), bench::pct(unguarded), bench::pct(guarded),
                core::Table::num(100.0 * recovered, 1)});
  }
  std::printf("\n-- weight faults in conv/FC tensors (mean over %zu seeds) --\n",
              std::size(kSeeds));
  bench::emit_table(ctx, "sentinel_weights", wt);

  return 0;
}
