// Table IV — computational overhead of ApproxKD and GE relative to normal
// fine-tuning.
//
// Paper: normal fine-tuning takes 2027 s for 30 epochs in ProxSim;
// ApproxKD + GE adds only ~17%. The reproduction times the same four
// configurations over identical epochs/batches and reports the relative
// overhead (absolute seconds differ — CPU simulator vs their GPU).
#include "bench_common.hpp"

AXNN_BENCH_CASE(table4_overhead, "Table IV — fine-tuning overhead") {
  using namespace axnn;

  const auto profile = core::BenchProfile::from_env();
  core::Workbench wb(bench::workbench_config(core::ModelKind::kResNet20));
  (void)wb.run_quantization_stage(/*use_kd=*/true);

  auto fc = wb.default_ft_config();
  fc.epochs = profile.full ? 5 : 3;  // timing runs; accuracy is irrelevant
  fc.eval_every_epoch = false;

  struct Config {
    const char* name;
    train::Method method;
    double paper_overhead_pct;  // vs normal, from Table IV
  };
  const std::vector<Config> configs = {
      {"normal", train::Method::kNormal, 0.0},
      {"GE", train::Method::kGE, 5.0},
      {"ApproxKD", train::Method::kApproxKD, 13.0},
      {"ApproxKD+GE", train::Method::kApproxKD_GE, 17.0},
  };

  double normal_seconds = 0.0;
  core::Table table({"Method", "seconds", "overhead vs normal[%]", "paper overhead[%]"});
  for (const auto& cfg : configs) {
    auto setup = core::ApproxStageSetup::uniform("trunc5", cfg.method, 5.0f);
    setup.finetune = fc;
    const auto run = wb.run_approximation_stage(setup);
    if (cfg.method == train::Method::kNormal) normal_seconds = run.result.seconds;
    const double overhead =
        normal_seconds > 0.0 ? (run.result.seconds / normal_seconds - 1.0) * 100.0 : 0.0;
    table.add_row({cfg.name, core::Table::num(run.result.seconds, 1),
                   core::Table::num(overhead, 1), core::Table::num(cfg.paper_overhead_pct, 0)});
    ctx.metric(std::string("seconds.") + cfg.name, run.result.seconds);
  }
  bench::emit_table(ctx, "table4", table);
  return 0;
}
