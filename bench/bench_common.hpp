// Shared helpers for the bench harness. Benches are AXNN_BENCH_CASE
// functions (axnn/obs/bench.hpp); the shared runner owns main().
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "axnn/axnn.hpp"

namespace axnn::bench {

inline core::WorkbenchConfig workbench_config(core::ModelKind model) {
  core::WorkbenchConfig cfg;
  cfg.model = model;
  cfg.profile = core::BenchProfile::from_env();
  return cfg;
}

/// Paper rule (Sec. IV-B): only fine-tune multipliers whose approximation
/// degrades accuracy by more than 1% relative to the reference accuracy.
inline bool needs_finetuning(double initial_acc, double reference_acc) {
  return reference_acc - initial_acc > 0.01;
}

/// Best distillation temperature per multiplier severity, following the
/// correlation the paper's Table III establishes: small MRE -> low T2,
/// large MRE -> high T2.
inline float best_t2_for(const axmul::MultiplierSpec& spec) {
  // Paper Table III best temperatures: trunc3 (5.5%) -> 2, trunc4/5 and
  // mid-MRE EvoApprox -> 5, MRE above ~18% -> 10.
  const double mre = spec.paper_mre;
  if (mre < 0.06) return 2.0f;
  if (mre < 0.13) return 5.0f;
  return 10.0f;
}

/// Multiplier sets per profile. The fast profile trims the sweep to keep the
/// whole suite tractable on one CPU core; the full profile covers the
/// paper's complete table rows.
inline std::vector<std::string> table5_multipliers(bool full) {
  if (full)
    return {"trunc1", "trunc2", "trunc3", "trunc4", "trunc5",
            "evoa470", "evoa29", "evoa228", "evoa249"};
  return {"trunc2", "trunc3", "trunc4", "trunc5", "evoa29", "evoa228", "evoa249"};
}

inline std::vector<std::string> table6_multipliers(bool full) {
  if (full)
    return {"trunc1", "trunc2", "trunc3", "trunc4", "trunc5",
            "evoa29", "evoa111", "evoa104", "evoa469", "evoa228", "evoa145"};
  return {"trunc3", "trunc5", "evoa228"};
}

inline std::vector<std::string> table7_multipliers(bool full) {
  if (full) return {"trunc1", "trunc2", "trunc3", "trunc4", "trunc5", "evoa470", "evoa228"};
  return {"trunc3", "trunc5", "evoa228"};
}

inline std::vector<std::string> table3_multipliers(bool full) {
  if (full)
    return {"trunc3", "trunc4", "trunc5", "evoa470", "evoa29",
            "evoa111", "evoa104", "evoa469", "evoa228", "evoa145"};
  return {"trunc3", "trunc5", "evoa29", "evoa228"};
}

/// One row of the Table V/VI comparison: initial accuracy plus the final
/// accuracy of each fine-tuning method. For EvoApprox-like multipliers the
/// GE fit is constant, so GE coincides with normal and ApproxKD+GE with
/// ApproxKD (the paper leaves those cells blank); the duplicates are reused
/// rather than re-run.
struct ComparisonRow {
  std::string multiplier;
  double mre = 0.0;           ///< measured Eq.-14 MRE
  double savings_pct = 0.0;
  double initial_acc = 0.0;
  bool finetuned = false;     ///< false when degradation <= 1% (paper rule)
  double normal = 0.0, ge = 0.0, alpha = 0.0, approxkd = 0.0, approxkd_ge = 0.0;
  bool ge_distinct = false;   ///< GE differs from normal (sloped error fit)
};

inline ComparisonRow run_comparison_row(core::Workbench& wb, const std::string& mult,
                                        double reference_acc,
                                        std::optional<float> t2_override = std::nullopt) {
  ComparisonRow row;
  row.multiplier = mult;
  const auto spec = axmul::find_spec(mult).value();
  row.mre = axmul::compute_error_stats(*axmul::make_multiplier(spec)).mre;
  row.savings_pct = spec.energy_savings_pct;
  row.initial_acc = wb.approx_initial_accuracy(mult);
  if (!needs_finetuning(row.initial_acc, reference_acc)) return row;

  row.finetuned = true;
  const float t2 = t2_override.value_or(best_t2_for(spec));
  row.ge_distinct = !wb.fit_error(mult).is_constant();

  // Comparison tables only report the final accuracy; skip the per-epoch
  // evaluations to keep the sweep tractable on one core.
  auto fc = wb.default_ft_config();
  fc.eval_every_epoch = false;

  const auto final_of = [&](train::Method m) {
    auto setup = core::ApproxStageSetup::uniform(mult, m, t2);
    setup.finetune = fc;
    return wb.run_approximation_stage(setup).result.final_acc;
  };
  row.normal = final_of(train::Method::kNormal);
  row.ge = row.ge_distinct ? final_of(train::Method::kGE) : row.normal;
  row.alpha = final_of(train::Method::kAlpha);
  row.approxkd = final_of(train::Method::kApproxKD);
  row.approxkd_ge = row.ge_distinct ? final_of(train::Method::kApproxKD_GE) : row.approxkd;
  return row;
}

/// Percentage string helper.
inline std::string pct(double fraction) { return core::Table::num(100.0 * fraction, 2); }

/// Print a table to stdout AND record it in the case's report.
inline void emit_table(obs::bench::BenchContext& ctx, const std::string& key,
                       const core::Table& t) {
  t.print();
  ctx.table(key, t.headers(), t.rows());
}

/// The comparison row as a report event (Table V/VI/VII rows).
inline obs::Json row_to_json(const ComparisonRow& row) {
  obs::Json j = obs::Json::object();
  j["multiplier"] = row.multiplier;
  j["mre"] = row.mre;
  j["savings_pct"] = row.savings_pct;
  j["initial_acc"] = row.initial_acc;
  j["finetuned"] = row.finetuned;
  if (row.finetuned) {
    j["normal"] = row.normal;
    j["ge"] = row.ge;
    j["alpha"] = row.alpha;
    j["approxkd"] = row.approxkd;
    j["approxkd_ge"] = row.approxkd_ge;
    j["ge_distinct"] = row.ge_distinct;
  }
  return j;
}

}  // namespace axnn::bench
