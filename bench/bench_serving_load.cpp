// Serving latency/throughput under the axnn::serve engine (DESIGN.md §5g).
//
// Brings up one engine (stage-1 quantized ResNet-20 served under trunc5) and
// drives it with the three canonical traffic shapes:
//   * closed-loop (fixed concurrency) — measures saturated throughput,
//   * open-loop Poisson at ~70% of that throughput — measures latency with
//     coordinated omission accounted for (intended-arrival clock),
//   * bursts — the micro-batcher's best case.
// Each scenario lands one servingReport row under "serving" in
// BENCH_serving_load.json (schema: definitions.servingReport); headline
// percentiles are duplicated as flat metrics.
#include "bench_common.hpp"

AXNN_BENCH_CASE(serving_load, "Serving: micro-batched latency/throughput under load") {
  using namespace axnn;

  serve::ModelSpec spec;
  spec.model = core::ModelKind::kResNet20;
  spec.profile = core::BenchProfile::from_env();
  // The serving path is what this bench measures — skip the approximation
  // fine-tune; stage-1 weights behave identically for latency purposes.
  spec.finetune = false;
  spec.plan = "default=trunc5";
  spec.batching.max_batch = 8;
  spec.batching.max_delay_us = 2000;
  spec.batching.queue_capacity = 64;

  auto engine = serve::Engine::load(spec);
  // Engine::load pre-warmed every (lane, point, batch-size) plan; from this
  // boundary on, serving traffic must resolve plans without a single cache
  // miss (gated below).
  kernels::PlanCache::global().reset_stats();
  serve::Session& session = engine->session();
  const data::Dataset& pool = engine->data().test;
  const int requests = ctx.full ? 2048 : 192;

  // Accuracy through the batched path — the serving-side counterpart of the
  // accuracy tables, and a standing bit-identity check against the direct
  // evaluation flow.
  const double served_acc = engine->evaluate_accuracy(session, ctx.full ? 0 : 256);
  std::printf("  served accuracy (trunc5, stage-1 weights): %s%%\n",
              bench::pct(served_acc).c_str());
  ctx.metric("served_acc", served_acc);

  obs::Json serving = obs::Json::array();
  core::Table t({"scenario", "req", "mean batch", "thr [req/s]", "p50 [ms]", "p95 [ms]",
                 "p99 [ms]", "max [ms]", "misses", "blocked"});
  const auto record = [&](const serve::LoadReport& r) {
    serving.push_back(r.to_json());
    t.add_row({r.scenario, core::Table::num(static_cast<double>(r.requests), 0),
               core::Table::num(r.mean_batch, 2), core::Table::num(r.throughput_rps, 1),
               core::Table::num(r.latency.p50, 2), core::Table::num(r.latency.p95, 2),
               core::Table::num(r.latency.p99, 2), core::Table::num(r.latency.max, 2),
               core::Table::num(static_cast<double>(r.deadline_misses), 0),
               core::Table::num(static_cast<double>(r.queue_full_waits), 0)});
  };

  serve::LoadSpec closed;
  closed.arrival = serve::Arrival::kClosed;
  closed.requests = requests;
  closed.clients = 8;
  const serve::LoadReport rc = serve::run_load(*engine, session, pool, closed);
  record(rc);
  ctx.metric("closed_throughput_rps", rc.throughput_rps);
  ctx.metric("closed_p99_ms", rc.latency.p99);

  serve::LoadSpec poisson;
  poisson.arrival = serve::Arrival::kPoisson;
  poisson.requests = requests;
  // Offered load at ~70% of the measured closed-loop service rate keeps the
  // open-loop queue stable while still exercising batching.
  poisson.rate_rps = std::max(10.0, 0.7 * rc.throughput_rps);
  poisson.deadline_us = 50000;
  const serve::LoadReport rp = serve::run_load(*engine, session, pool, poisson);
  record(rp);
  ctx.metric("poisson_rate_rps", poisson.rate_rps);
  ctx.metric("poisson_p50_ms", rp.latency.p50);
  ctx.metric("poisson_p99_ms", rp.latency.p99);
  ctx.metric("poisson_deadline_misses", rp.deadline_misses);

  serve::LoadSpec burst;
  burst.arrival = serve::Arrival::kBurst;
  burst.requests = requests;
  burst.burst = 16;
  const serve::LoadReport rb = serve::run_load(*engine, session, pool, burst);
  record(rb);
  ctx.metric("burst_mean_batch", rb.mean_batch);
  ctx.metric("burst_p99_ms", rb.latency.p99);

  std::printf("\n-- load scenarios (max_batch=%d, max_delay=%lldus) --\n",
              spec.batching.max_batch, static_cast<long long>(spec.batching.max_delay_us));
  bench::emit_table(ctx, "serving_load", t);
  ctx.report.set("serving", std::move(serving));

  const serve::EngineStats stats = engine->stats();
  ctx.metric("total_batches", stats.batches);
  ctx.metric("mean_batch", stats.mean_batch);
  ctx.metric("flush_full", stats.flush_full);
  ctx.metric("flush_timer", stats.flush_timer);

  const kernels::PlanCacheStats ps = kernels::PlanCache::global().stats();
  std::printf("  plan cache after load: hit rate %.4f (%lld hits, %lld misses)\n",
              ps.hit_rate(), static_cast<long long>(ps.hits),
              static_cast<long long>(ps.misses));
  ctx.metric("plan_cache_hit_rate", ps.hit_rate());
  ctx.metric("plan_cache_misses", ps.misses);

  // Bursts of 16 against max_batch 8 must actually batch.
  if (rb.mean_batch < 2.0) {
    std::printf("FAIL: burst traffic did not batch (mean %.2f)\n", rb.mean_batch);
    return 1;
  }
  // Pre-warm covered every shape the dispatcher can build, so post-load
  // traffic may not miss the plan cache.
  if (ps.hit_rate() < 0.99) {
    std::printf("FAIL: plan cache hit rate %.4f < 0.99 after pre-warm\n", ps.hit_rate());
    return 1;
  }
  return 0;
}
