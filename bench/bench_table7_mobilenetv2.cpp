// Table VII — approximate MobileNetV2: normal fine-tuning vs ApproxKD+GE.
//
// The paper raises T2 by 1 for this CNN (larger accuracy degradation) and
// keeps BatchNorm unfolded. Expected shape: ApproxKD+GE consistently ahead
// of normal fine-tuning, recovery ordering monotone in multiplier MRE.
#include <array>
#include <map>

#include "bench_common.hpp"

AXNN_BENCH_CASE(table7_mobilenetv2, "Table VII — approximate MobileNetV2") {
  using namespace axnn;

  const auto profile = core::BenchProfile::from_env();
  core::Workbench wb(bench::workbench_config(core::ModelKind::kMobileNetV2));
  const auto s1 = wb.run_quantization_stage(/*use_kd=*/true);
  std::printf("FP %.2f%% | 8A4W %.2f%% -> %.2f%% after KD quantization stage\n\n",
              100.0 * wb.fp_accuracy(), 100.0 * wb.quant_acc_before_ft(),
              100.0 * s1.final_acc);

  // Paper [initial, normal, approxkd+ge] (Table VII).
  const std::map<std::string, std::array<double, 3>> paper = {
      {"trunc1", {93.64, 93.91, 94.07}}, {"trunc2", {92.94, 93.87, 94.02}},
      {"trunc3", {76.62, 93.24, 93.58}}, {"trunc4", {10.00, 92.82, 93.13}},
      {"trunc5", {10.00, 85.79, 87.01}}, {"evoa470", {91.76, 93.43, 93.78}},
      {"evoa228", {24.19, 86.79, 87.26}},
  };

  const double reference = s1.final_acc;
  core::Table table({"Multiplier", "Initial[%]", "Final Normal", "Final ApproxKD+GE",
                     "paper I/N/KD+GE"});
  for (const auto& mult : bench::table7_multipliers(profile.full)) {
    const auto spec = axmul::find_spec(mult).value();
    // "As this CNN has larger accuracy degradation, we increase T2 by 1."
    const float t2 = bench::best_t2_for(spec) + 1.0f;

    const double initial = wb.approx_initial_accuracy(mult);
    std::string paper_ref = "-";
    if (const auto it = paper.find(mult); it != paper.end())
      paper_ref = core::Table::num(it->second[0], 2) + "/" +
                  core::Table::num(it->second[1], 2) + "/" +
                  core::Table::num(it->second[2], 2);
    if (!bench::needs_finetuning(initial, reference)) {
      table.add_row({mult, bench::pct(initial), "-", "-", paper_ref});
      continue;
    }
    auto fc = wb.default_ft_config();
    fc.eval_every_epoch = false;
    const auto final_of = [&](train::Method m) {
      auto setup = core::ApproxStageSetup::uniform(mult, m, t2);
      setup.finetune = fc;
      return wb.run_approximation_stage(setup).result.final_acc;
    };
    const auto normal = final_of(train::Method::kNormal);
    const auto kdge = final_of(train::Method::kApproxKD_GE);
    table.add_row({mult, bench::pct(initial), bench::pct(normal), bench::pct(kdge),
                   paper_ref});
    std::printf("  %-8s done: normal %.2f | kd+ge %.2f\n", mult.c_str(), 100.0 * normal,
                100.0 * kdge);
  }
  std::printf("\n");
  ctx.metric("reference_acc", reference);
  bench::emit_table(ctx, "table7", table);
  return 0;
}
