// Shared main() for every registered bench case (see axnn/obs/bench.hpp).
//
// Compiled into each bench binary by the axnn_bench() CMake function. Runs
// all cases registered in the binary (normally one), printing the familiar
// human-readable header/tables to stdout and writing a uniform
// BENCH_<name>.json summary (plus BENCH_<name>.jsonl when the case emitted
// events) into --json DIR (default: the working directory).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>

#include "axnn/core/profile.hpp"
#include "axnn/core/report_adapters.hpp"
#include "axnn/obs/bench.hpp"
#include "axnn/obs/report.hpp"
#include "axnn/obs/telemetry.hpp"

namespace {

void usage(const char* prog) {
  std::printf(
      "usage: %s [--list] [--full] [--timing] [--no-json] [--json DIR]\n"
      "  --list     list the cases registered in this binary and exit\n"
      "  --full     paper-scale profile (same as AXNN_REPRO_FULL=1)\n"
      "  --timing   attach a telemetry collector; per-layer timings land in\n"
      "             the report's \"telemetry\" section\n"
      "  --json DIR write BENCH_<name>.json[l] into DIR (default \".\")\n"
      "  --no-json  skip report files (stdout tables only)\n",
      prog);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace axnn;

  bool timing = false, list = false, write_json = true;
  std::string outdir = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      list = true;
    } else if (arg == "--full") {
      // The cases (and the Workbench caches they hit) read the profile from
      // the environment; route the flag through it so both agree.
      setenv("AXNN_REPRO_FULL", "1", 1);
    } else if (arg == "--timing") {
      timing = true;
    } else if (arg == "--no-json") {
      write_json = false;
    } else if (arg == "--json" && i + 1 < argc) {
      outdir = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], arg.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  const auto& cases = obs::bench::cases();
  if (list) {
    for (const auto& bc : cases) std::printf("%s\t%s\n", bc.name.c_str(), bc.title.c_str());
    return 0;
  }
  if (cases.empty()) {
    std::fprintf(stderr, "%s: no bench cases registered\n", argv[0]);
    return 1;
  }

  if (write_json && outdir != ".") std::filesystem::create_directories(outdir);

  const auto profile = core::BenchProfile::from_env();
  profile.apply();

  for (const auto& bc : cases) {
    std::printf("\n===== %s [%s profile] =====\n", bc.title.c_str(),
                profile.full ? "FULL (paper-scale)" : "fast");

    obs::RunReport report(bc.name, bc.title);
    report.set("profile", core::to_json(profile));

    obs::Collector collector({.timing = true});
    std::optional<obs::ScopedCollector> attach;
    if (timing) attach.emplace(collector);

    obs::bench::BenchContext ctx{profile.full, timing, report,
                                 timing ? &collector : nullptr};
    const int rc = bc.fn(ctx);
    attach.reset();

    if (timing) report.merge_telemetry(collector);
    report.metric("exit_code", rc);

    if (write_json) {
      const std::string stem = outdir + "/BENCH_" + bc.name;
      report.write(stem + ".json");
      std::printf("\nreport: %s.json", stem.c_str());
      if (!report.events().empty()) {
        report.write_jsonl(stem + ".jsonl");
        std::printf(" (+ %zu events in %s.jsonl)", report.events().size(), stem.c_str());
      }
      std::printf("\n");
    }
    if (rc != 0) return rc;
  }
  return 0;
}
