// Resilience sweep: accuracy vs bit-flip rate for passively vs actively
// fine-tuned approximate models.
//
// The paper's claim is that ApproxKD+GE recovers accuracy lost to wrong
// arithmetic; this bench asks whether the recovered models are *also* more
// tolerant to hardware faults. ResNet20 is fine-tuned under trunc5 with the
// normal (passive) method and with ApproxKD+GE, then each model is
// evaluated under three fault surfaces at increasing rates:
//   * weight faults      — transient bit flips in the float weight tensors
//   * activation faults  — transient flips in inter-layer activations
//     (via ExecContext::with_faults)
//   * LUT faults         — stuck-at defects in the multiplier product table
// Each cell averages over several fault seeds.
#include <memory>
#include <vector>

#include "bench_common.hpp"

namespace {

using namespace axnn;

constexpr uint64_t kSeeds[] = {11, 23, 47};

double mean_acc_weight_faults(core::Workbench& wb, nn::Sequential& model,
                              const approx::SignedMulTable& tab, double rate) {
  double sum = 0.0;
  for (const uint64_t seed : kSeeds) {
    auto copy = wb.clone();
    nn::copy_state(model, *copy);
    resilience::FaultSpec fs;
    fs.rate = rate;
    fs.seed = seed;
    const resilience::FaultInjector inj(fs);
    std::vector<Tensor*> values;
    for (nn::Param* p : nn::collect_params(*copy)) values.push_back(&p->value);
    resilience::corrupt_tensors(values, inj);
    sum += train::evaluate_accuracy(*copy, wb.data().test, nn::ExecContext::quant_approx(tab));
  }
  return sum / static_cast<double>(std::size(kSeeds));
}

double mean_acc_activation_faults(core::Workbench& wb, nn::Sequential& model,
                                  const approx::SignedMulTable& tab, double rate) {
  double sum = 0.0;
  for (const uint64_t seed : kSeeds) {
    resilience::FaultSpec fs;
    fs.rate = rate;
    fs.seed = seed;
    // Restrict flips to mantissa + low exponent bits: a single top-exponent
    // flip per image saturates any network and the sweep degenerates.
    fs.bit_hi = 27;
    const resilience::FaultInjector inj(fs);
    sum += train::evaluate_accuracy(model, wb.data().test,
                                    nn::ExecContext::quant_approx(tab).with_faults(inj));
  }
  return sum / static_cast<double>(std::size(kSeeds));
}

double mean_acc_lut_faults(core::Workbench& wb, nn::Sequential& model, const std::string& mult,
                           double rate) {
  double sum = 0.0;
  for (const uint64_t seed : kSeeds) {
    approx::SignedMulTable tab(axmul::make_lut(mult));
    resilience::FaultSpec fs;
    fs.rate = rate;
    fs.kind = resilience::FaultKind::kStuckAt;
    fs.bit_hi = 12;  // stuck bits within the 8x4 product magnitude range
    fs.seed = seed;
    resilience::corrupt_lut(tab, resilience::FaultInjector(fs));
    sum += train::evaluate_accuracy(model, wb.data().test, nn::ExecContext::quant_approx(tab));
  }
  return sum / static_cast<double>(std::size(kSeeds));
}

}  // namespace

AXNN_BENCH_CASE(fault_sweep, "Fault sweep: accuracy vs bit-flip rate (ResNet20, trunc5)") {
  const std::string mult = "trunc5";

  core::Workbench wb(bench::workbench_config(core::ModelKind::kResNet20));
  (void)wb.run_quantization_stage(/*use_kd=*/true);

  // Fine-tune once per method and snapshot the resulting weights.
  struct MethodRun {
    train::Method method;
    std::unique_ptr<nn::Sequential> model;
    double clean_acc = 0.0;
  };
  std::vector<MethodRun> runs;
  const auto spec = axmul::find_spec(mult).value();
  for (const train::Method m : {train::Method::kNormal, train::Method::kApproxKD_GE}) {
    const auto r = wb.run_approximation_stage(
        core::ApproxStageSetup::uniform(mult, m, bench::best_t2_for(spec)));
    MethodRun mr;
    mr.method = m;
    mr.model = wb.clone();
    mr.clean_acc = r.result.final_acc;
    runs.push_back(std::move(mr));
    std::printf("  fine-tuned %s: %.2f%%\n", train::to_string(m).c_str(),
                100.0 * r.result.final_acc);
  }

  const approx::SignedMulTable tab(axmul::make_lut(mult));
  const double rates[] = {0.0, 1e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2};

  for (const char* surface : {"weights", "activations", "lut"}) {
    core::Table table({"flip rate", std::string("acc[%] ") + train::to_string(runs[0].method),
                       std::string("acc[%] ") + train::to_string(runs[1].method)});
    for (const double rate : rates) {
      std::vector<std::string> row{core::Table::num(rate, 5)};
      for (auto& mr : runs) {
        double acc = 0.0;
        if (std::string(surface) == "weights")
          acc = rate == 0.0 ? mr.clean_acc : mean_acc_weight_faults(wb, *mr.model, tab, rate);
        else if (std::string(surface) == "activations")
          acc = rate == 0.0 ? mr.clean_acc
                            : mean_acc_activation_faults(wb, *mr.model, tab, rate);
        else
          acc = rate == 0.0 ? mr.clean_acc : mean_acc_lut_faults(wb, *mr.model, mult, rate);
        row.push_back(bench::pct(acc));
      }
      table.add_row(row);
    }
    std::printf("\n-- %s faults (mean over %zu seeds) --\n", surface, std::size(kSeeds));
    bench::emit_table(ctx, std::string("faults_") + surface, table);
  }
  return 0;
}
