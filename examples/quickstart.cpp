// axnn quickstart — the paper's full flow (Algorithm 1) on a small ResNet20.
//
//   1. Pre-train a full-precision ResNet20 on the synthetic CIFAR10-like
//      task (cached under .axnn_cache).
//   2. Fold BatchNorm, calibrate 8A4W quantization (MinPropQE, power-of-two
//      steps), and run the quantization stage with KD (teacher = FP model).
//   3. Approximate all conv/FC multiplications with the trunc5 multiplier
//      (38% energy savings, ~20% MRE) and recover accuracy with
//      ApproxKD + Gradient Estimation.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "axnn/axnn.hpp"

int main() {
  using namespace axnn;

  core::WorkbenchConfig cfg;
  cfg.model = core::ModelKind::kResNet20;
  cfg.profile = core::BenchProfile::from_env();
  cfg.verbose = true;

  std::printf("== axnn quickstart: ResNet20, synthetic CIFAR10-like, %s profile ==\n",
              cfg.profile.full ? "FULL" : "fast");

  core::Workbench wb(cfg);
  const auto info = wb.info();
  std::printf("model %s: %.3fM params, %.1fM MACs/sample, FP accuracy %.2f%%\n",
              info.name.c_str(), 1e-6 * static_cast<double>(info.parameters),
              1e-6 * static_cast<double>(info.macs_per_sample), 100.0 * wb.fp_accuracy());

  const auto s1 = wb.run_quantization_stage(/*use_kd=*/true, /*t1=*/1.0f);
  std::printf("8A4W: %.2f%% before FT -> %.2f%% after KD fine-tuning\n",
              100.0 * wb.quant_acc_before_ft(), 100.0 * s1.final_acc);

  const char* mult = "trunc5";
  const auto spec = axmul::find_spec(mult).value();
  std::printf("approximating with %s (MRE %.1f%%, savings %.0f%%)\n", mult,
              100.0 * spec.paper_mre, spec.energy_savings_pct);
  std::printf("initial approximate accuracy: %.2f%%\n",
              100.0 * wb.approx_initial_accuracy(mult));

  const auto run = wb.run_approximation_stage(
      core::ApproxStageSetup::uniform(mult, train::Method::kApproxKD_GE, /*t2=*/5.0f));
  std::printf("error fit: %s\n", run.fit.to_string().c_str());
  std::printf("ApproxKD+GE: %.2f%% -> %.2f%% (best %.2f%%) in %.1fs\n",
              100.0 * run.initial_acc, 100.0 * run.result.final_acc,
              100.0 * run.result.best_acc, run.result.seconds);

  const auto energy = energy::estimate(info.macs_per_sample, spec);
  std::printf("energy: %.0f exact-MAC units -> %.0f (%.0f%% savings)\n", energy.exact_energy,
              energy.approx_energy, energy.savings_pct);
  std::printf("accuracy loss vs FP: %.2f%%\n",
              100.0 * (wb.fp_accuracy() - run.result.final_acc));
  return 0;
}
