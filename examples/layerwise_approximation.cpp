// axnn example — layer-wise (non-uniform) approximation.
//
// The paper evaluates *uniform* approximation (one multiplier for every
// layer) and names mixed approximation as future work. This example
// demonstrates per-layer execution plans (nn::NetPlan): a resiliency sweep
// ranks conv layers by how much a drastic multiplier hurts when applied to
// that layer alone, then the most resilient layers run trunc5 while
// sensitive layers keep a gentler unit — recovering accuracy between the
// two uniform extremes at intermediate energy savings.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "axnn/axnn.hpp"

int main() {
  using namespace axnn;

  core::WorkbenchConfig cfg;
  cfg.model = core::ModelKind::kResNet20;
  cfg.profile = core::BenchProfile::from_env();
  core::Workbench wb(cfg);
  (void)wb.run_quantization_stage(/*use_kd=*/true);

  // Every conv/FC leaf with its plan-addressable path.
  std::vector<nn::GemmLeaf> convs;
  for (const auto& leaf : nn::enumerate_gemm_leaves(wb.model()))
    if (leaf.is_conv) convs.push_back(leaf);
  std::printf("found %zu conv layers\n", convs.size());

  const approx::SignedMulTable gentle(axmul::make_lut("trunc2"));
  const approx::SignedMulTable aggressive(axmul::make_lut("trunc5"));

  // Uniform baselines.
  const double acc_gentle = train::evaluate_accuracy(
      wb.model(), wb.data().test, nn::ExecContext::quant_approx(gentle));
  const double acc_aggr = train::evaluate_accuracy(
      wb.model(), wb.data().test, nn::ExecContext::quant_approx(aggressive));
  std::printf("uniform trunc2: %.2f%% | uniform trunc5: %.2f%%\n", 100.0 * acc_gentle,
              100.0 * acc_aggr);

  // Resiliency sweep: a plan that puts exactly one conv on trunc5 and
  // everything else on trunc2.
  const auto eval_plan = [&](const nn::NetPlan& plan) {
    const nn::PlanResolution res = plan.resolve(wb.model());
    return train::evaluate_accuracy(wb.model(), wb.data().test,
                                    nn::ExecContext::quant_approx(gentle).with_plan(res));
  };
  struct LayerScore {
    size_t index;
    double acc;
  };
  std::vector<LayerScore> scores;
  for (size_t i = 0; i < convs.size(); ++i) {
    nn::NetPlan probe(nn::LayerPlan{.multiplier = "trunc2"});
    probe.set(convs[i].path, nn::LayerPlan{.multiplier = "trunc5"});
    scores.push_back({i, eval_plan(probe)});
  }
  std::sort(scores.begin(), scores.end(),
            [](const LayerScore& a, const LayerScore& b) { return a.acc > b.acc; });

  core::Table resil({"rank", "conv layer", "acc with only this layer on trunc5[%]"});
  for (size_t r = 0; r < scores.size(); ++r)
    resil.add_row({std::to_string(r), convs[scores[r].index].path,
                   core::Table::num(100.0 * scores[r].acc, 2)});
  resil.print();

  // Apply trunc5 to the most resilient half, keep trunc2 elsewhere. The
  // mixed configuration is one declarative, serializable plan.
  nn::NetPlan mixed(nn::LayerPlan{.multiplier = "trunc2"});
  const size_t n_aggr = scores.size() / 2;
  for (size_t r = 0; r < n_aggr; ++r)
    mixed.set(convs[scores[r].index].path, nn::LayerPlan{.multiplier = "trunc5"});
  const double acc_mixed = eval_plan(mixed);
  std::printf("\nmixed plan: %s\n", mixed.to_string().c_str());
  std::printf("mixed (top-%zu resilient layers on trunc5, rest trunc2): %.2f%%\n", n_aggr,
              100.0 * acc_mixed);
  std::printf("expected: uniform-trunc2 >= mixed >= uniform-trunc5, with energy savings\n"
              "between the 8%% and 38%% uniform points.\n");
  return 0;
}
