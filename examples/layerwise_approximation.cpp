// axnn example — layer-wise (non-uniform) approximation.
//
// The paper evaluates *uniform* approximation (one multiplier for every
// layer) and names mixed approximation as future work. This example
// demonstrates the library's per-layer multiplier overrides: a resiliency
// sweep ranks conv layers by how much a drastic multiplier hurts when
// applied to that layer alone, then the most resilient layers run trunc5
// while sensitive layers keep a gentler unit — recovering accuracy between
// the two uniform extremes at intermediate energy savings.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "axnn/axnn.hpp"

namespace {

using namespace axnn;

void collect_gemm_layers(nn::Layer& root, std::vector<nn::Conv2d*>& convs,
                         std::vector<nn::Linear*>& linears) {
  if (auto* c = dynamic_cast<nn::Conv2d*>(&root)) convs.push_back(c);
  if (auto* l = dynamic_cast<nn::Linear*>(&root)) linears.push_back(l);
  for (auto* ch : root.children()) collect_gemm_layers(*ch, convs, linears);
}

}  // namespace

int main() {
  using namespace axnn;

  core::WorkbenchConfig cfg;
  cfg.model = core::ModelKind::kResNet20;
  cfg.profile = core::BenchProfile::from_env();
  core::Workbench wb(cfg);
  (void)wb.run_quantization_stage(/*use_kd=*/true);

  std::vector<nn::Conv2d*> convs;
  std::vector<nn::Linear*> linears;
  collect_gemm_layers(wb.model(), convs, linears);
  std::printf("found %zu conv and %zu FC layers\n", convs.size(), linears.size());

  const approx::SignedMulTable aggressive(axmul::make_lut("trunc5"));
  const approx::SignedMulTable gentle(axmul::make_lut("trunc2"));

  const auto eval_mixed = [&]() {
    // Context multiplier is the gentle unit; overrides select trunc5.
    return train::evaluate_accuracy(wb.model(), wb.data().test,
                                    nn::ExecContext::quant_approx(gentle));
  };

  // Uniform baselines.
  const double acc_gentle = train::evaluate_accuracy(
      wb.model(), wb.data().test, nn::ExecContext::quant_approx(gentle));
  const double acc_aggr = train::evaluate_accuracy(
      wb.model(), wb.data().test, nn::ExecContext::quant_approx(aggressive));
  std::printf("uniform trunc2: %.2f%% | uniform trunc5: %.2f%%\n", 100.0 * acc_gentle,
              100.0 * acc_aggr);

  // Resiliency sweep: approximate one conv layer at a time with trunc5.
  struct LayerScore {
    size_t index;
    double acc;
  };
  std::vector<LayerScore> scores;
  for (size_t i = 0; i < convs.size(); ++i) {
    convs[i]->set_multiplier_override(&aggressive);
    scores.push_back({i, eval_mixed()});
    convs[i]->set_multiplier_override(nullptr);
  }
  std::sort(scores.begin(), scores.end(),
            [](const LayerScore& a, const LayerScore& b) { return a.acc > b.acc; });

  core::Table resil({"rank", "conv layer", "acc with only this layer on trunc5[%]"});
  for (size_t r = 0; r < scores.size(); ++r)
    resil.add_row({std::to_string(r), convs[scores[r].index]->name(),
                   core::Table::num(100.0 * scores[r].acc, 2)});
  resil.print();

  // Apply trunc5 to the most resilient half, keep trunc2 elsewhere.
  const size_t n_aggr = scores.size() / 2;
  for (size_t r = 0; r < n_aggr; ++r)
    convs[scores[r].index]->set_multiplier_override(&aggressive);
  const double acc_mixed = eval_mixed();
  std::printf("\nmixed (top-%zu resilient layers on trunc5, rest trunc2): %.2f%%\n", n_aggr,
              100.0 * acc_mixed);
  std::printf("expected: uniform-trunc2 >= mixed >= uniform-trunc5, with energy savings\n"
              "between the 8%% and 38%% uniform points.\n");

  for (auto* c : convs) c->set_multiplier_override(nullptr);
  return 0;
}
