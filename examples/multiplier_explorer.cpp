// axnn example — explore the approximate-multiplier library.
//
// For every registry multiplier this prints the exhaustive Eq.-14 error
// statistics, the Monte-Carlo GE fit, the estimated network-level energy
// savings for ResNet20, and the zero-shot (no fine-tuning) accuracy impact —
// the "resiliency sweep" a deployment engineer runs before committing to a
// multiplier.
//
// Usage: multiplier_explorer [model: resnet20|resnet32|mobilenetv2]
#include <cstdio>
#include <string>

#include "axnn/axnn.hpp"

int main(int argc, char** argv) {
  using namespace axnn;

  core::ModelKind kind = core::ModelKind::kResNet20;
  if (argc > 1) {
    const std::string arg = argv[1];
    if (arg == "resnet32") kind = core::ModelKind::kResNet32;
    else if (arg == "mobilenetv2") kind = core::ModelKind::kMobileNetV2;
    else if (arg != "resnet20") {
      std::fprintf(stderr, "unknown model '%s'\n", arg.c_str());
      return 1;
    }
  }

  core::WorkbenchConfig cfg;
  cfg.model = kind;
  cfg.profile = core::BenchProfile::from_env();
  core::Workbench wb(cfg);
  (void)wb.run_quantization_stage(/*use_kd=*/true);
  const auto info = wb.info();
  const double quant_acc = train::evaluate_accuracy(wb.model(), wb.data().test,
                                                    nn::ExecContext::quant_exact());

  std::printf("model %s: %.3fM params, %.2fM MACs/sample, 8A4W accuracy %.2f%%\n\n",
              info.name.c_str(), 1e-6 * static_cast<double>(info.parameters),
              1e-6 * static_cast<double>(info.macs_per_sample), 100.0 * quant_acc);

  core::Table table({"Multiplier", "MRE[%]", "bias", "GE fit", "net energy savings[%]",
                     "zero-shot acc[%]", "acc drop[%]"});
  for (const auto& spec : axmul::paper_multipliers()) {
    const auto stats = axmul::compute_error_stats(*axmul::make_multiplier(spec));
    const auto fit = wb.fit_error(spec.id);
    const auto energy = energy::estimate(info.macs_per_sample, spec);
    const double acc = wb.approx_initial_accuracy(spec.id);
    table.add_row({spec.id, core::Table::num(100.0 * stats.mre, 2),
                   core::Table::num(stats.mean_error, 1),
                   fit.is_constant() ? "constant" : "k=" + core::Table::num(fit.k, 3),
                   core::Table::num(energy.savings_pct, 0),
                   core::Table::num(100.0 * acc, 2),
                   core::Table::num(100.0 * (quant_acc - acc), 2)});
  }
  table.print();
  std::printf("\nMultipliers whose zero-shot drop exceeds 1%% need the approximation-stage\n"
              "fine-tuning (Algorithm 1) — see the method_comparison example.\n");
  return 0;
}
