// axnn example — plugging a *custom* approximate multiplier into the flow.
//
// Implements a new behavioural model (an operand-truncating multiplier that
// drops the two LSBs of the activation operand), characterises it, fits its
// GE error model, and runs the approximation-stage fine-tuning against it —
// the complete workflow for evaluating your own hardware unit.
#include <cstdio>

#include "axnn/axnn.hpp"

namespace {

/// Drops the two least-significant activation bits before multiplying —
/// a cheap operand-gating approximation.
class ActGateMultiplier final : public axnn::axmul::Multiplier {
public:
  std::string name() const override { return "actgate2"; }
  int32_t multiply(uint8_t a, uint8_t w) const override {
    return static_cast<int32_t>(a & ~0x3u) * static_cast<int32_t>(w);
  }
};

}  // namespace

int main() {
  using namespace axnn;

  // 1. Characterise the unit over the full operand domain (Eq. 14).
  ActGateMultiplier mult;
  const auto stats = axmul::compute_error_stats(mult);
  std::printf("custom multiplier '%s': MRE %.2f%%, bias %.2f, rms %.2f\n",
              mult.name().c_str(), 100.0 * stats.mre, stats.mean_error, stats.rms_error);

  // 2. Compile the signed execution table and fit the GE error model.
  const approx::SignedMulTable tab{axmul::MultiplierLut(mult)};
  const auto fit = ge::fit_multiplier_error(tab);
  std::printf("GE fit: %s (%s)\n", fit.to_string().c_str(),
              fit.is_constant() ? "constant -> GE degenerates to STE"
                                : "biased -> GE will rescale weight gradients");

  // 3. Run the full flow: quantize, distil, then fine-tune under the unit.
  core::WorkbenchConfig cfg;
  cfg.model = core::ModelKind::kResNet20;
  cfg.profile = core::BenchProfile::from_env();
  core::Workbench wb(cfg);
  const auto s1 = wb.run_quantization_stage(/*use_kd=*/true);

  // Zero-shot accuracy under the custom unit.
  const double initial =
      train::evaluate_accuracy(wb.model(), wb.data().test, nn::ExecContext::quant_approx(tab));
  std::printf("8A4W accuracy %.2f%% -> zero-shot with '%s': %.2f%%\n", 100.0 * s1.final_acc,
              mult.name().c_str(), 100.0 * initial);

  // Fine-tune with ApproxKD + GE. The Workbench convenience API works from
  // registry ids, so drive the stage directly for a custom unit.
  auto teacher = wb.clone();
  train::ApproxStageSetup setup;
  setup.mul = &tab;
  setup.method = train::Method::kApproxKD_GE;
  setup.fit = &fit;
  setup.teacher_q = teacher.get();

  auto fc = wb.default_ft_config();
  fc.temperature = 5.0f;
  const auto result =
      train::approximation_stage(wb.model(), setup, wb.data().train, wb.data().test, fc);
  std::printf("after ApproxKD+GE fine-tuning: %.2f%% (best %.2f%%) in %.1fs\n",
              100.0 * result.final_acc, 100.0 * result.best_acc, result.seconds);
  return 0;
}
