// axnn example — compare the five fine-tuning methods on one multiplier
// (the experiment behind Table V / Fig. 4 of the paper).
//
// Usage: method_comparison [multiplier=trunc5] [epochs=profile] [t2=5]
//
// Prints the per-epoch accuracy of normal / GE / alpha / ApproxKD /
// ApproxKD+GE fine-tuning of an approximate ResNet20, plus a summary row
// per method.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "axnn/axnn.hpp"

int main(int argc, char** argv) {
  using namespace axnn;

  const std::string mult = argc > 1 ? argv[1] : "trunc5";
  const int epochs = argc > 2 ? std::atoi(argv[2]) : 0;
  const float t2 = argc > 3 ? static_cast<float>(std::atof(argv[3])) : 5.0f;

  if (!axmul::find_spec(mult)) {
    std::fprintf(stderr, "unknown multiplier '%s'\n", mult.c_str());
    return 1;
  }

  core::WorkbenchConfig cfg;
  cfg.model = core::ModelKind::kResNet20;
  cfg.profile = core::BenchProfile::from_env();
  core::Workbench wb(cfg);

  const auto s1 = wb.run_quantization_stage(/*use_kd=*/true);
  std::printf("FP %.2f%% | 8A4W %.2f%% -> %.2f%% | multiplier %s, T2=%.0f\n",
              100.0 * wb.fp_accuracy(), 100.0 * wb.quant_acc_before_ft(),
              100.0 * s1.final_acc, mult.c_str(), t2);

  const std::vector<train::Method> methods = {
      train::Method::kNormal, train::Method::kGE, train::Method::kAlpha,
      train::Method::kApproxKD, train::Method::kApproxKD_GE};

  core::Table curves({"method", "epoch", "test_acc[%]"});
  core::Table summary({"method", "initial[%]", "final[%]", "best[%]", "seconds"});
  for (const auto m : methods) {
    auto fc = wb.default_ft_config();
    if (epochs > 0) fc.epochs = epochs;
    auto setup = core::ApproxStageSetup::uniform(mult, m, t2);
    setup.finetune = fc;
    const auto run = wb.run_approximation_stage(setup);
    for (const auto& ep : run.result.history)
      curves.add_row({train::to_string(m), std::to_string(ep.epoch),
                      core::Table::pct(ep.test_acc)});
    summary.add_row({train::to_string(m), core::Table::pct(run.initial_acc),
                     core::Table::pct(run.result.final_acc),
                     core::Table::pct(run.result.best_acc),
                     core::Table::num(run.result.seconds, 1)});
    std::printf("%-12s -> final %.2f%%\n", train::to_string(m).c_str(),
                100.0 * run.result.final_acc);
  }

  std::printf("\nPer-epoch curves (Fig. 4 series):\n");
  curves.print();
  std::printf("\nSummary:\n");
  summary.print();
  return 0;
}
