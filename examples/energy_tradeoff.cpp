// axnn example — the accuracy/energy Pareto sweep a deployment would run:
// for each truncated multiplier depth, execute the full Algorithm-1 flow
// (ApproxKD + GE) and report the energy savings against the accuracy loss
// w.r.t. the full-precision model.
//
// This regenerates the paper's headline claim: ~38% energy savings (trunc5)
// at a small accuracy loss after fine-tuning.
//
// Usage: energy_tradeoff [max_trunc=5]
#include <cstdio>
#include <cstdlib>

#include "axnn/axnn.hpp"

int main(int argc, char** argv) {
  using namespace axnn;

  const int max_trunc = argc > 1 ? std::atoi(argv[1]) : 5;

  core::WorkbenchConfig cfg;
  cfg.model = core::ModelKind::kResNet20;
  cfg.profile = core::BenchProfile::from_env();
  core::Workbench wb(cfg);
  const auto s1 = wb.run_quantization_stage(/*use_kd=*/true);
  const auto info = wb.info();

  std::printf("ResNet20 FP accuracy %.2f%%, 8A4W accuracy %.2f%%\n\n",
              100.0 * wb.fp_accuracy(), 100.0 * s1.final_acc);

  core::Table table({"Multiplier", "energy savings[%]", "initial acc[%]",
                     "acc after ApproxKD+GE[%]", "loss vs FP[%]"});
  for (int t = 1; t <= max_trunc; ++t) {
    const std::string mult = "trunc" + std::to_string(t);
    const auto spec = axmul::find_spec(mult).value();
    const auto energy = energy::estimate(info.macs_per_sample, spec);

    const double initial = wb.approx_initial_accuracy(mult);
    double final_acc = initial;
    if (s1.final_acc - initial > 0.01) {
      const float t2 = spec.paper_mre < 0.03 ? 2.0f : (spec.paper_mre < 0.13 ? 5.0f : 10.0f);
      final_acc = wb.run_approximation_stage(core::ApproxStageSetup::uniform(
                                                 mult, train::Method::kApproxKD_GE, t2))
                      .result.final_acc;
    }
    table.add_row({mult, core::Table::num(energy.savings_pct, 0),
                   core::Table::num(100.0 * initial, 2), core::Table::num(100.0 * final_acc, 2),
                   core::Table::num(100.0 * (wb.fp_accuracy() - final_acc), 2)});
    std::printf("  %s done (%.0f%% savings -> %.2f%% accuracy)\n", mult.c_str(),
                energy.savings_pct, 100.0 * final_acc);
  }
  std::printf("\n");
  table.print();
  return 0;
}
